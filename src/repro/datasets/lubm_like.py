"""LUBM-like university graphs — the RPQ scaling series.

The Lehigh University Benchmark generates universities with a fixed
schema (departments, professors, students, courses, publications) whose
size scales linearly in the university count; the paper's LUBM1k …
LUBM2.3M series is that single knob.  This generator reproduces the
schema's relation mix so the Q1–Q16 templates traverse the same shapes:
``subOrganizationOf`` chains, ``worksFor``/``memberOf`` fans,
``advisor`` links, ``takesCourse``/``teacherOf`` bipartite blocks,
``type`` edges into a small class layer.

Edge-count ratios follow LUBM's published profile (≈4 edges/vertex,
``takesCourse`` dominating).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import InvalidArgumentError
from repro.graph import LabeledGraph


@dataclass(frozen=True)
class LubmPreset:
    """One row of the paper's LUBM series (vertex target at scale=1)."""

    name: str
    universities: int


#: The paper's six LUBM sizes, scaled to 1/100 by default `scale`.
LUBM_PRESETS: dict[str, LubmPreset] = {
    "LUBM1k": LubmPreset("LUBM1k", 8),
    "LUBM3.5k": LubmPreset("LUBM3.5k", 24),
    "LUBM5.9k": LubmPreset("LUBM5.9k", 40),
    "LUBM1M": LubmPreset("LUBM1M", 80),
    "LUBM1.7M": LubmPreset("LUBM1.7M", 120),
    "LUBM2.3M": LubmPreset("LUBM2.3M", 156),
}

# Per-university entity counts (LUBM profile, light version).
_DEPTS_PER_UNI = 18
_PROFS_PER_DEPT = 9
_STUDENTS_PER_DEPT = 90
_COURSES_PER_DEPT = 12
_CLASS_LAYER = 16  # schema classes for `type`


def lubm_like_graph(
    preset: str | LubmPreset = "LUBM1k",
    *,
    scale: float = 1.0,
    seed: int = 0,
) -> LabeledGraph:
    """Generate a LUBM-like graph (``scale`` multiplies university count)."""
    p = LUBM_PRESETS[preset] if isinstance(preset, str) else preset
    if scale <= 0:
        raise InvalidArgumentError("scale must be positive")
    rng = np.random.default_rng(seed)
    n_uni = max(1, int(round(p.universities * scale)))

    n_dept = n_uni * _DEPTS_PER_UNI
    n_prof = n_dept * _PROFS_PER_DEPT
    n_stud = n_dept * _STUDENTS_PER_DEPT
    n_course = n_dept * _COURSES_PER_DEPT

    # Vertex layout: [classes | universities | departments | professors |
    # students | courses]
    off_cls = 0
    off_uni = off_cls + _CLASS_LAYER
    off_dept = off_uni + n_uni
    off_prof = off_dept + n_dept
    off_stud = off_prof + n_prof
    off_course = off_stud + n_stud
    n = off_course + n_course
    g = LabeledGraph(n=n)

    dept_ids = np.arange(n_dept)
    dept_uni = off_uni + dept_ids // _DEPTS_PER_UNI
    g.edges["subOrganizationOf"].extend(
        zip((off_dept + dept_ids).tolist(), dept_uni.tolist())
    )

    prof_ids = np.arange(n_prof)
    prof_dept = off_dept + prof_ids // _PROFS_PER_DEPT
    g.edges["worksFor"].extend(
        zip((off_prof + prof_ids).tolist(), prof_dept.tolist())
    )

    stud_ids = np.arange(n_stud)
    stud_dept = off_dept + stud_ids // _STUDENTS_PER_DEPT
    g.edges["memberOf"].extend(
        zip((off_stud + stud_ids).tolist(), stud_dept.tolist())
    )

    # Advisors: each student advised by a professor of its department.
    adv_local = rng.integers(0, _PROFS_PER_DEPT, size=n_stud)
    advisor = off_prof + (stud_dept - off_dept) * _PROFS_PER_DEPT + adv_local
    g.edges["advisor"].extend(
        zip((off_stud + stud_ids).tolist(), advisor.tolist())
    )

    # Courses: teacherOf (professor -> course) and takesCourse
    # (student -> course, 3 courses each, within the department).
    course_ids = np.arange(n_course)
    course_dept = course_ids // _COURSES_PER_DEPT
    teacher_local = rng.integers(0, _PROFS_PER_DEPT, size=n_course)
    teacher = off_prof + course_dept * _PROFS_PER_DEPT + teacher_local
    g.edges["teacherOf"].extend(
        zip(teacher.tolist(), (off_course + course_ids).tolist())
    )
    for _ in range(3):
        pick = rng.integers(0, _COURSES_PER_DEPT, size=n_stud)
        course = off_course + (stud_dept - off_dept) * _COURSES_PER_DEPT + pick
        g.edges["takesCourse"].extend(
            zip((off_stud + stud_ids).tolist(), course.tolist())
        )

    # type edges into the class layer.
    def add_type(offset: int, count: int, cls: int) -> None:
        ids = np.arange(count) + offset
        g.edges["type"].extend(zip(ids.tolist(), [cls] * count))

    add_type(off_uni, n_uni, 0)
    add_type(off_dept, n_dept, 1)
    add_type(off_prof, n_prof, 2)
    add_type(off_stud, n_stud, 3)
    add_type(off_course, n_course, 4)

    # Publication-ish noise relations to fill the label tail.
    n_noise = n_prof * 2
    src = off_prof + rng.integers(0, n_prof, size=n_noise)
    dst = off_course + rng.integers(0, max(1, n_course), size=n_noise)
    g.edges["publicationAuthor"].extend(zip(src.tolist(), dst.tolist()))

    return g

"""Structured and random graph generators for micro-benchmarks.

These drive the boolean-vs-generic operation benchmarks (E0) and the
ablations (E9): the matrix-squaring workload of the original SPbLA
evaluation runs over exactly such families (uniform sparse, power-law
degree, regular grid) because SpGEMM behaviour is governed by the row
nnz distribution — uniform rows exercise the small hash bins, power-law
tails hit the global bin, grids are the friendly constant-degree case.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidArgumentError
from repro.graph import LabeledGraph


def uniform_random_graph(
    n: int,
    m: int,
    *,
    labels: tuple[str, ...] = ("a",),
    seed: int = 0,
) -> LabeledGraph:
    """~m edges placed uniformly at random with uniform label choice."""
    if n <= 0:
        raise InvalidArgumentError("n must be positive")
    rng = np.random.default_rng(seed)
    g = LabeledGraph(n=n)
    if m <= 0:
        return g
    src = rng.integers(0, n, size=m)
    dst = rng.integers(0, n, size=m)
    lab = rng.integers(0, len(labels), size=m)
    for li, label in enumerate(labels):
        mask = lab == li
        g.edges[label].extend(zip(src[mask].tolist(), dst[mask].tolist()))
    return g


def power_law_graph(
    n: int,
    m: int,
    *,
    exponent: float = 2.1,
    labels: tuple[str, ...] = ("a",),
    seed: int = 0,
) -> LabeledGraph:
    """~m edges whose endpoints follow a Zipf-like degree distribution.

    Produces the heavy-tailed row-size distribution that stresses
    SpGEMM binning (a few huge rows land in the global-memory bin).
    """
    if n <= 0:
        raise InvalidArgumentError("n must be positive")
    rng = np.random.default_rng(seed)
    g = LabeledGraph(n=n)
    if m <= 0:
        return g
    # Endpoint sampling: P(v) ∝ (v + 1)^{-exponent} over a permutation.
    weights = (np.arange(1, n + 1, dtype=np.float64)) ** (-exponent)
    weights /= weights.sum()
    perm = rng.permutation(n)
    src = perm[rng.choice(n, size=m, p=weights)]
    dst = perm[rng.choice(n, size=m, p=weights)]
    lab = rng.integers(0, len(labels), size=m)
    for li, label in enumerate(labels):
        mask = lab == li
        g.edges[label].extend(
            zip(src[mask].tolist(), dst[mask].tolist())
        )
    return g


def grid_graph(side: int, *, label: str = "a", wrap: bool = False) -> LabeledGraph:
    """Directed 2-D grid (right and down edges); ``wrap`` makes it a torus."""
    if side <= 0:
        raise InvalidArgumentError("side must be positive")
    n = side * side
    g = LabeledGraph(n=n)
    for r in range(side):
        for c in range(side):
            v = r * side + c
            if c + 1 < side:
                g.add_edge(v, label, v + 1)
            elif wrap:
                g.add_edge(v, label, r * side)
            if r + 1 < side:
                g.add_edge(v, label, v + side)
            elif wrap:
                g.add_edge(v, label, c)
    return g


def chain_graph(n: int, *, label: str = "a") -> LabeledGraph:
    """Directed path 0 → 1 → … → n-1 (worst case for naive closure)."""
    g = LabeledGraph(n=max(1, n))
    for v in range(n - 1):
        g.add_edge(v, label, v + 1)
    return g


def cycle_graph(n: int, *, label: str = "a") -> LabeledGraph:
    """Directed cycle — closure is the complete relation."""
    g = chain_graph(n, label=label)
    if n > 1:
        g.add_edge(n - 1, label, 0)
    return g


def worst_case_bipartite(k: int, *, label: str = "a") -> LabeledGraph:
    """Two fan stages: k sources → 1 hub → k sinks.

    Squaring produces k² products through the hub from 2k+1 input edges
    — the maximal expansion/compaction ratio, the adversarial case for
    ESC SpGEMM memory (its expansion buffer holds all k² candidates).
    """
    if k <= 0:
        raise InvalidArgumentError("k must be positive")
    n = 2 * k + 1
    hub = k
    g = LabeledGraph(n=n)
    for i in range(k):
        g.add_edge(i, label, hub)
        g.add_edge(hub, label, k + 1 + i)
    return g

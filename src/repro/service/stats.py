"""Service observability: per-stage latency percentiles and counters.

Production query serving lives or dies by its tail latency, so the
stats tier records every request's per-stage timings (queue wait, plan
compilation, evaluation) into bounded reservoirs and reports
p50/p90/p99 over the most recent window, alongside batching
effectiveness (batch-size distribution) and queue depth.  Everything is
cheap enough to stay on by default: a deque append per stage under one
lock.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass, field

from repro.analysis.locktrace import make_lock

#: Per-stage reservoir size; percentiles are over the last N samples.
RESERVOIR = 4096

STAGES = ("queue_wait", "compile", "evaluate", "total")


@dataclass(frozen=True)
class LatencySummary:
    """Percentile summary of one stage's recent latencies (seconds)."""

    count: int = 0
    mean: float = 0.0
    p50: float = 0.0
    p90: float = 0.0
    p99: float = 0.0
    max: float = 0.0

    @classmethod
    def of(cls, samples) -> "LatencySummary":
        xs = sorted(samples)
        if not xs:
            return cls()

        def pct(p: float) -> float:
            return xs[min(len(xs) - 1, int(p * len(xs)))]

        return cls(
            count=len(xs),
            mean=sum(xs) / len(xs),
            p50=pct(0.50),
            p90=pct(0.90),
            p99=pct(0.99),
            max=xs[-1],
        )


@dataclass(frozen=True)
class StatsSnapshot:
    """Point-in-time view of service health (immutable)."""

    counters: dict
    latency: dict          # stage -> LatencySummary
    batch_sizes: dict      # {"count", "mean", "max", "histogram"}
    queue_depth: int
    queue_depth_max: int
    plan_cache: dict = field(default_factory=dict)
    graph_store: dict = field(default_factory=dict)
    result_cache: dict = field(default_factory=dict)
    backend: dict = field(default_factory=dict)
    #: Cluster view when a read router is attached (repro.cluster):
    #: graph versions, per-replica acked/lag, routing counters.
    replication: dict = field(default_factory=dict)

    def render(self) -> str:
        """Human-readable multi-line report (CLI self-test output)."""
        lines = ["service stats"]
        c = self.counters
        lines.append(
            f"  requests: submitted={c.get('submitted', 0)} "
            f"completed={c.get('completed', 0)} failed={c.get('failed', 0)} "
            f"expired={c.get('expired', 0)} cancelled={c.get('cancelled', 0)}"
        )
        lines.append(
            f"  queue: depth={self.queue_depth} max={self.queue_depth_max}"
        )
        if c.get("full_evals") or c.get("incremental_evals"):
            lines.append(
                f"  evaluations: full={c.get('full_evals', 0)} "
                f"incremental={c.get('incremental_evals', 0)} "
                f"declined={c.get('incremental_declined', 0)}"
            )
        bs = self.batch_sizes
        if bs.get("count"):
            lines.append(
                f"  batches: {bs['count']} executed, mean size "
                f"{bs['mean']:.2f}, max {bs['max']} "
                f"(histogram {dict(sorted(bs['histogram'].items()))})"
            )
        for stage in STAGES:
            s = self.latency.get(stage)
            if s is None or not s.count:
                continue
            lines.append(
                f"  {stage:10s} p50={s.p50 * 1e3:8.2f}ms "
                f"p90={s.p90 * 1e3:8.2f}ms p99={s.p99 * 1e3:8.2f}ms "
                f"max={s.max * 1e3:8.2f}ms (n={s.count})"
            )
        if self.plan_cache:
            pc = self.plan_cache
            lines.append(
                f"  plan cache: {pc['entries']}/{pc['capacity']} entries, "
                f"hits={pc['hits']} misses={pc['misses']} "
                f"evictions={pc['evictions']} hit_ratio={pc['hit_ratio']:.2f}"
            )
        if self.result_cache:
            rc = self.result_cache
            lines.append(
                f"  result cache: {rc['entries']}/{rc['capacity']} entries, "
                f"hits={rc['hits']} misses={rc['misses']} "
                f"invalidations={rc['invalidations']} "
                f"hit_ratio={rc['hit_ratio']:.2f}"
            )
        if self.graph_store:
            gs = self.graph_store
            lines.append(
                f"  graph store: {gs['graphs']} graphs, {gs['vertices']} "
                f"vertices, {gs['edges']} edges, "
                f"{gs['resident_bytes'] / 1024:.0f} KiB resident"
            )
        if self.backend:
            be = self.backend
            lines.append(
                f"  backend: arena peak {be.get('arena_peak_bytes', 0) / 1024:.0f} "
                f"KiB, routes {be.get('dispatch', {})}, "
                f"kernels {be.get('kernels', {})}"
            )
            if be.get("kernel_times_ms"):
                lines.append(
                    f"  kernel times (ms): {be['kernel_times_ms']}, "
                    f"bit workers {be.get('bit_workers', 1)}"
                )
        if self.replication:
            rep = self.replication
            rc = rep.get("counters", {})
            lines.append(
                f"  replication: {len(rep.get('followers', []))} follower(s), "
                f"max staleness {rep.get('max_staleness')} versions, "
                f"routed replica={rc.get('routed_replica', 0)} "
                f"primary={rc.get('routed_primary', 0)} "
                f"stale={rc.get('replica_stale', 0)} "
                f"errors={rc.get('replica_errors', 0)}"
            )
            for f in rep.get("followers", []):
                acked = dict(sorted(f.get("acked", {}).items()))
                lag = dict(sorted(f.get("lag", {}).items()))
                lines.append(
                    f"    {f.get('id')}: applied {acked} lag {lag}"
                )
        return "\n".join(lines)


class ServiceStats:
    """Mutable, thread-safe collector behind :class:`StatsSnapshot`."""

    def __init__(self):
        self._lock = make_lock("ServiceStats._lock")
        self._stages: dict[str, deque] = {
            s: deque(maxlen=RESERVOIR) for s in STAGES
        }  # guarded-by: _lock
        self._counters: Counter = Counter()  # guarded-by: _lock
        self._batch_sizes: deque = deque(maxlen=RESERVOIR)  # guarded-by: _lock
        self._queue_depth = 0  # guarded-by: _lock
        self._queue_depth_max = 0  # guarded-by: _lock

    # -- recording (hot path: one lock, O(1)) ------------------------------

    def record_stage(self, stage: str, seconds: float) -> None:
        with self._lock:
            self._stages.setdefault(stage, deque(maxlen=RESERVOIR)).append(
                float(seconds)
            )

    def record_batch(self, size: int) -> None:
        with self._lock:
            self._batch_sizes.append(int(size))

    def count(self, name: str, delta: int = 1) -> None:
        with self._lock:
            self._counters[name] += delta

    def set_queue_depth(self, depth: int) -> None:
        with self._lock:
            self._queue_depth = depth
            self._queue_depth_max = max(self._queue_depth_max, depth)

    # -- reading -----------------------------------------------------------

    def snapshot(
        self, *, plan_cache=None, graph_store=None, result_cache=None,
        backend=None, replication=None,
    ) -> StatsSnapshot:
        with self._lock:
            stages = {s: list(v) for s, v in self._stages.items()}
            counters = dict(self._counters)
            batches = list(self._batch_sizes)
            depth = self._queue_depth
            depth_max = self._queue_depth_max
        return StatsSnapshot(
            counters=counters,
            latency={s: LatencySummary.of(v) for s, v in stages.items()},
            batch_sizes={
                "count": len(batches),
                "mean": sum(batches) / len(batches) if batches else 0.0,
                "max": max(batches) if batches else 0,
                "histogram": dict(Counter(batches)),
            },
            queue_depth=depth,
            queue_depth_max=depth_max,
            plan_cache=plan_cache.stats() if plan_cache is not None else {},
            graph_store=graph_store.stats() if graph_store is not None else {},
            result_cache=result_cache.stats() if result_cache is not None else {},
            backend=backend or {},
            replication=replication or {},
        )

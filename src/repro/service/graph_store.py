"""Named-graph registry with format/backend residency.

The kernels operate on whatever matrices they are handed; the service
tier's job is to make sure hot graphs are *already* lowered — and, under
the hybrid backend, already in the right storage format — when a query
arrives.  :class:`GraphStore` owns that state: registering a graph
lowers its per-label adjacency matrices onto the service context once,
and the residency policy decides which labels additionally keep a
bit-packed view pinned (reusing the hybrid dispatcher's cached-view
machinery from :mod:`repro.backends.hybrid`), so fixpoints over dense
labels start word-parallel instead of paying the packing cost per query.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.analysis.locktrace import make_lock
from repro.errors import (
    IndexOutOfBoundsError,
    InvalidArgumentError,
    StoreError,
    UnknownGraphError,
)
from repro.graph import LabeledGraph

if TYPE_CHECKING:  # typed slots below feed the static lock analysis
    from repro.incr.overlay import DeltaOverlay
    from repro.store.volume import GraphVolume

RESIDENCY_MODES = ("auto", "bit", "tiled", "sparse")


@dataclass
class GraphHandle:
    """One registered graph: host container + resident device matrices."""

    name: str
    graph: LabeledGraph
    matrices: dict = field(default_factory=dict)  # label -> core Matrix
    residency: str = "auto"
    #: label -> resident formats after the residency pass ("sparse",
    #: "bit" or "both"); non-hybrid backends always report "sparse".
    formats: dict = field(default_factory=dict)
    #: Monotonic mutation counter; every applied edge delta bumps it.
    #: The result cache keys on it, so a bump invalidates stale answers.
    version: int = 0  # guarded-by: _lock
    #: Attached :class:`~repro.store.volume.GraphVolume` (or None for a
    #: purely in-memory graph); deltas are WAL-logged through it.
    volume: "GraphVolume | None" = field(default=None, repr=False, compare=False)
    #: :class:`~repro.incr.overlay.DeltaOverlay` of pending edge deltas
    #: (None when the store runs with ``overlay=False``): mutations
    #: record here instead of rebuilding label matrices, and
    #: :meth:`query_matrices` merges it into the operands.
    overlay: "DeltaOverlay | None" = field(default=None, repr=False, compare=False)
    queries_served: int = 0  # guarded-by: _lock
    _lock: object = field(
        default_factory=lambda: make_lock("GraphHandle._lock"),
        repr=False,
        compare=False,
    )

    @property
    def n(self) -> int:
        return self.graph.n

    @property
    def labels(self) -> list[str]:
        return self.graph.labels

    def current_version(self) -> int:
        with self._lock:
            return self.version

    def record_served(self, count: int) -> None:
        """Count queries answered from this handle (worker threads)."""
        with self._lock:
            self.queries_served += count

    def served(self) -> int:
        with self._lock:
            return self.queries_served

    def memory_bytes(self) -> int:
        """Resident device bytes across all labels (every view)."""
        return sum(m.memory_bytes() for m in self.matrices.values())

    def query_matrices(self) -> dict:
        """Label → operand matrix, with pending deltas merged in.

        Without an overlay this is ``matrices`` itself (always rebuilt
        eagerly).  With one, labels carrying pending deltas are replaced
        by the overlay's merged view (cached per overlay stamp), and
        labels born purely from deltas appear even though no base matrix
        exists yet.  Borrowed either way — callers must not free.
        """
        if self.overlay is None:
            return self.matrices
        out = dict(self.matrices)
        for label in self.overlay.touched_labels():
            merged = self.overlay.operand(label, out.get(label))
            if merged is not None:
                out[label] = merged
        return out

    def delta_since(self, version: int):
        """Overlay journal summary after ``version`` (None = unknowable);
        the scheduler's warm-start arbitration input."""
        if self.overlay is None:
            return None
        return self.overlay.delta_since(version)

    def free(self) -> None:
        for m in self.matrices.values():
            m.free()
        self.matrices = {}
        if self.overlay is not None:
            self.overlay.free()
        if self.volume is not None:
            self.volume.close()


class GraphStore:
    """Thread-safe registry of named, device-resident graphs.

    With a ``store_root`` attached, graphs can round-trip to disk:
    :meth:`persist` writes a snapshot generation into the graph's
    :class:`~repro.store.volume.GraphVolume`, :meth:`restore` warm-starts
    a handle from the newest snapshot + WAL (BitMatrix snapshots come
    back as zero-copy ``np.memmap`` views), and :meth:`add_edges` /
    :meth:`remove_edges` WAL-log every mutation before applying it.
    """

    def __init__(
        self,
        ctx,
        *,
        store_root: str | Path | None = None,
        overlay: bool = True,
        overlay_fold_limit: int = 8192,
    ):
        self.ctx = ctx
        self.store_root = Path(store_root) if store_root is not None else None
        #: With ``overlay=True`` (default) mutations record into a
        #: :class:`~repro.incr.overlay.DeltaOverlay` instead of
        #: rebuilding label matrices; a label folds back into its base
        #: matrix once its pending set reaches ``overlay_fold_limit``
        #: edges (and on every persist).
        self.use_overlay = bool(overlay)
        self.overlay_fold_limit = int(overlay_fold_limit)
        self._lock = make_lock("GraphStore._lock")
        self._graphs: dict[str, GraphHandle] = {}  # guarded-by: _lock
        #: Replication hook (:mod:`repro.cluster`): called as
        #: ``on_mutate(name, version)`` after every committed mutation
        #: batch, outside all store locks.  Assigned once, before
        #: traffic starts (the primary's shipper wake-up); not guarded.
        self.on_mutate = None

    def _make_overlay(self, graph: LabeledGraph, version: int):
        if not self.use_overlay:
            return None
        from repro.incr.overlay import DeltaOverlay

        return DeltaOverlay(self.ctx, (graph.n, graph.n), version)

    def register(
        self,
        name: str,
        graph: LabeledGraph,
        *,
        residency: str = "auto",
    ) -> GraphHandle:
        """Lower ``graph`` onto the service context under ``name``.

        ``residency`` (hybrid backend only; a no-op elsewhere):

        * ``"sparse"`` — stay CSR/COO-resident;
        * ``"bit"`` — pin every label's bit-packed view eagerly;
        * ``"tiled"`` — pin the bit view *and* its tiled presence grid
          (zero-tile skipping kernels start warm);
        * ``"auto"`` — pin the bit view only for labels whose density
          is at or above the dispatcher's crossover (those are the ones
          the cost model would route to the bit kernel anyway).

        Re-registering a name replaces (and frees) the previous entry.
        """
        if residency not in RESIDENCY_MODES:
            raise InvalidArgumentError(
                f"residency {residency!r} not in {RESIDENCY_MODES}"
            )
        matrices = graph.adjacency_matrices(self.ctx)
        formats = self._apply_residency(matrices, residency)
        handle = GraphHandle(
            name=name,
            graph=graph,
            matrices=matrices,
            residency=residency,
            formats=formats,
            overlay=self._make_overlay(graph, 0),
        )
        with self._lock:
            old = self._graphs.get(name)
            self._graphs[name] = handle
        if old is not None:
            old.free()
        return handle

    def _apply_residency(self, matrices: dict, residency: str) -> dict:
        return {
            label: self._label_residency(matrix, residency)
            for label, matrix in matrices.items()
        }

    def _label_residency(self, matrix, residency: str) -> str:
        from repro.backends.hybrid import HybridBackend

        backend = self.ctx.backend
        if not isinstance(backend, HybridBackend):
            return "sparse"
        if residency == "tiled":
            return backend.ensure_resident(matrix.handle, "tiled")
        if residency == "bit" or (
            residency == "auto"
            and matrix.density >= backend.policy.crossover_density
        ):
            return backend.ensure_resident(matrix.handle, "bit")
        return matrix.handle.resident

    def get(self, name: str) -> GraphHandle:
        with self._lock:
            handle = self._graphs.get(name)
        if handle is None:
            raise UnknownGraphError(name)
        return handle

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._graphs

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._graphs)

    def drop(self, name: str) -> None:
        with self._lock:
            handle = self._graphs.pop(name, None)
        if handle is None:
            raise UnknownGraphError(name)
        handle.free()

    def clear(self) -> None:
        with self._lock:
            handles = list(self._graphs.values())
            self._graphs.clear()
        for handle in handles:
            handle.free()

    # -- persistence (repro.store) ----------------------------------------

    def _require_store(self) -> Path:
        if self.store_root is None:
            raise StoreError(
                "no store attached (pass store_root= to GraphStore / "
                "QueryService, or set REPRO_STORE)"
            )
        return self.store_root

    def open_volume(self, name: str, *, create: bool = True):
        """The :class:`~repro.store.volume.GraphVolume` for ``name``,
        opened as a writer (the service mutates volumes; the advisory
        lock keeps CLI maintenance off a live one)."""
        from repro.store.volume import GraphVolume, volume_root

        path = volume_root(self._require_store()) / name
        if create:
            return GraphVolume.create(path, name)
        return GraphVolume.open(path, writer=True)

    def persist(self, name: str) -> int:
        """Snapshot a registered graph into its volume; returns the new
        generation.  Labels whose resident format includes a bit view
        also get a bit container, so the next :meth:`restore` maps them
        back zero-copy."""
        handle = self.get(name)
        # The whole snapshot+WAL-reset runs under the handle lock: a
        # concurrent add/remove_edges must not fsync a delta (and bump
        # the version) between "snapshot serialised version V" and
        # "WAL reset", or the reset would discard an acknowledged write
        # the snapshot does not contain.  Concurrent persist() calls
        # serialise here too, so generation numbers cannot collide.
        with handle._lock:
            # Compaction point: fold pending overlay deltas into the base
            # matrices so the snapshotted formats and the resident state
            # agree, and the overlay restarts empty.
            if handle.overlay is not None:
                for label in handle.overlay.touched_labels():
                    self._rebuild_label(handle, label)
                handle.overlay.fold()
            volume = handle.volume
            if volume is None:
                volume = self.open_volume(name, create=True)
                handle.volume = volume
            generation = volume.write_snapshot(
                handle.graph,
                version=handle.version,
                bit_labels={
                    label
                    for label, fmt in handle.formats.items()
                    if fmt in ("bit", "both")
                }
                or None,
            )
        return generation

    def _adopt_bit_views(self, matrices: dict, bit_paths: dict) -> None:
        """Attach snapshot bit containers as read-only memmap views
        (hybrid backend only; a no-op elsewhere)."""
        from repro.backends.hybrid import HybridBackend

        backend = self.ctx.backend
        if not bit_paths or not isinstance(backend, HybridBackend):
            return
        from repro.store.container import load_matrix

        for label, path in bit_paths.items():
            if label in matrices:
                bit = load_matrix(path, mmap=True)
                backend.adopt_bit_mapped(matrices[label].handle, bit)

    def restore(
        self,
        name: str,
        *,
        residency: str = "auto",
        mmap: bool = True,
    ) -> GraphHandle:
        """Warm-start ``name`` from its on-disk volume.

        Loads the newest committed snapshot, replays the committed WAL
        suffix, and registers the result.  Under the hybrid backend,
        labels whose snapshot bit container is still valid (untouched by
        WAL deltas) attach it as a read-only ``np.memmap`` view — the
        packed words are *mapped*, not copied to the heap (visible as
        arena ``mapped_bytes``, not ``live_bytes``).
        """
        if residency not in RESIDENCY_MODES:
            raise InvalidArgumentError(
                f"residency {residency!r} not in {RESIDENCY_MODES}"
            )
        # A registered handle already holds the volume's writer lock;
        # take over its GraphVolume instead of re-opening (a second
        # writer open would conflict with our own advisory lock).
        with self._lock:
            prior = self._graphs.get(name)
        volume = None
        handed_off = False
        if prior is not None:
            with prior._lock:
                volume, prior.volume = prior.volume, None
            handed_off = volume is not None
        if volume is None:
            volume = self.open_volume(name, create=False)
        try:
            state = volume.load(mmap=mmap)
            matrices = state.graph.adjacency_matrices(self.ctx)
            self._adopt_bit_views(matrices, state.bit_paths)
        except Exception:
            if handed_off:
                prior.volume = volume  # hand the lease back
            else:
                volume.close()
            raise
        formats = self._apply_residency(matrices, residency)
        handle = GraphHandle(
            name=name,
            graph=state.graph,
            matrices=matrices,
            residency=residency,
            formats=formats,
            version=state.version,
            volume=volume,
            overlay=self._make_overlay(state.graph, state.version),
        )
        with self._lock:
            old = self._graphs.get(name)
            self._graphs[name] = handle
        if old is not None:
            old.free()
        return handle

    def restore_all(
        self, *, residency: str = "auto", mmap: bool = True
    ) -> list[str]:
        """Restore every volume under the store root; returns the names."""
        from repro.store.volume import list_volumes

        names = []
        for volume in list_volumes(self._require_store()):
            self.restore(volume.name, residency=residency, mmap=mmap)
            names.append(volume.name)
        return names

    def restore_replica(
        self,
        name: str,
        *,
        residency: str = "auto",
        mmap: bool = True,
        generation: int | None = None,
    ) -> tuple[GraphHandle, int]:
        """Bootstrap ``name`` as a read replica from its volume's snapshot.

        The follower-process twin of :meth:`restore`
        (:mod:`repro.cluster`): opens the volume *without* the writer
        lease, loads only the newest (or ``generation``-pinned)
        committed snapshot — no local WAL replay; the primary ships
        committed deltas over the wire instead — and registers the
        handle at the snapshot version with **no attached volume**, so
        local mutations would not double-log against the primary's WAL.
        With ``mmap=True`` the bit containers attach as read-only
        memmap views: N follower processes on one host share those
        pages through the page cache.  Returns ``(handle, generation)``.
        """
        from repro.store.volume import GraphVolume, volume_root

        if residency not in RESIDENCY_MODES:
            raise InvalidArgumentError(
                f"residency {residency!r} not in {RESIDENCY_MODES}"
            )
        volume = GraphVolume.open(volume_root(self._require_store()) / name)
        try:
            state = volume.load_snapshot(generation=generation, mmap=mmap)
        finally:
            volume.close()
        matrices = state.graph.adjacency_matrices(self.ctx)
        self._adopt_bit_views(matrices, state.bit_paths)
        formats = self._apply_residency(matrices, residency)
        handle = GraphHandle(
            name=name,
            graph=state.graph,
            matrices=matrices,
            residency=residency,
            formats=formats,
            version=state.version,
            overlay=self._make_overlay(state.graph, state.version),
        )
        with self._lock:
            old = self._graphs.get(name)
            self._graphs[name] = handle
        if old is not None:
            old.free()
        return handle, state.generation

    # -- mutation (edge deltas) -------------------------------------------

    def add_edges(self, name: str, label: str, edges) -> int:
        """Apply (and WAL-log) an edge-addition batch; returns the new
        graph version."""
        return self._mutate(name, "add", label, edges)

    def remove_edges(self, name: str, label: str, edges) -> int:
        """Apply (and WAL-log) an edge-removal batch; returns the new
        graph version."""
        return self._mutate(name, "remove", label, edges)

    @staticmethod
    def _edge_batch(handle: GraphHandle, edges) -> np.ndarray:
        batch = np.asarray(edges, dtype=np.int64)
        if batch.ndim != 2 or batch.shape[1] != 2:
            raise InvalidArgumentError("edges must have shape (count, 2)")
        n = handle.n
        if batch.size:
            for axis, values in (("row", batch[:, 0]), ("column", batch[:, 1])):
                lo, hi = int(values.min()), int(values.max())
                if lo < 0 or hi >= n:
                    raise IndexOutOfBoundsError(axis, lo if lo < 0 else hi, n)
        return batch

    def _rebuild_label(self, handle: GraphHandle, label: str) -> None:
        """Rebuild one label's base matrix from the authoritative host
        edge list — the O(label) conversion the overlay path defers to
        fold time.  Caller holds ``handle._lock``."""
        n = handle.n
        pairs = handle.graph.edges.get(label, [])
        if pairs:
            arr = np.asarray(pairs, dtype=np.int64)
            matrix = self.ctx.matrix_from_lists((n, n), arr[:, 0], arr[:, 1])
        else:
            matrix = self.ctx.matrix_empty((n, n))
        fmt = self._label_residency(matrix, handle.residency)
        # The previous matrix is dereferenced, not freed: in-flight
        # evaluations may still read it; the arena reclaims its
        # buffers when the last reference drops.
        handle.matrices[label] = matrix
        handle.formats[label] = fmt

    def _mutate(self, name: str, op: str, label: str, edges) -> int:
        return self.apply_batch(name, [(op, label, edges)])

    def apply_batch(self, name: str, deltas) -> int:
        """Apply (and WAL-log) a heterogeneous mutation batch.

        ``deltas`` is an iterable of ``(op, label, edges)`` triples with
        ``op`` in ``{"add", "remove"}``; each triple gets its own WAL
        record and version bump (matching :meth:`add_edges` semantics),
        all applied under one handle lock acquisition.

        On the overlay path no matrix is rebuilt at all — batches land
        in the :class:`~repro.incr.overlay.DeltaOverlay` and labels fold
        only once their pending set reaches ``overlay_fold_limit``.
        Without an overlay, each *touched label* is rebuilt exactly once
        at the end — not once per batch element, which is what made
        multi-delta ingest O(batch · graph) before.

        Returns the final graph version.
        """
        from repro.store.volume import apply_deltas
        from repro.store.wal import EdgeDelta

        handle = self.get(name)
        items = []
        for op, label, edges in deltas:
            if op not in ("add", "remove"):
                raise InvalidArgumentError(
                    f"unknown delta op {op!r} (add / remove)"
                )
            items.append((op, str(label), self._edge_batch(handle, edges)))
        with handle._lock:
            version = handle.version
            touched: set[str] = set()
            for op, label, batch in items:
                version += 1
                # WAL before state: once append_delta returns, the batch
                # is fsynced; a crash after this point replays it on
                # restore.
                if handle.volume is not None:
                    handle.volume.append_delta(op, label, batch, version=version)
                delta = EdgeDelta(op, label, batch.astype(np.uint32), version)
                apply_deltas(handle.graph, [delta])
                if handle.overlay is not None:
                    handle.overlay.record(op, label, batch, version)
                touched.add(label)
            for label in sorted(touched):
                if handle.overlay is None:
                    self._rebuild_label(handle, label)
                elif (
                    handle.overlay.pending_edges(label)
                    >= self.overlay_fold_limit
                ):
                    self._rebuild_label(handle, label)
                    handle.overlay.fold(label)
            handle.version = version
        hook = self.on_mutate
        if hook is not None:
            hook(name, version)
        return version

    def apply_replicated(self, name: str, deltas) -> int:
        """Apply WAL-shipped deltas on a read replica; returns the version.

        The follower-side twin of :meth:`apply_batch`
        (:mod:`repro.cluster`): ``deltas`` are
        :class:`~repro.store.wal.EdgeDelta` records decoded (and
        CRC-verified) off the replication stream.  They are already
        durable on the primary, so nothing is logged here, and versions
        come from the deltas' own stamps rather than being minted.
        Deltas at or below the handle version are skipped — after a
        reconnect the primary re-ships from the follower's acked
        version, so replay must be idempotent.  All deltas land under
        one lock acquisition: every state a concurrent reader observes
        is a whole prefix of the primary's committed history.
        """
        from repro.store.volume import apply_deltas

        handle = self.get(name)
        with handle._lock:
            version = handle.version
            touched: set[str] = set()
            for delta in deltas:
                if delta.version <= version:
                    continue
                apply_deltas(handle.graph, [delta])
                if handle.overlay is not None:
                    handle.overlay.record_delta(delta)
                version = delta.version
                touched.add(delta.label)
            for label in sorted(touched):
                if handle.overlay is None:
                    self._rebuild_label(handle, label)
                elif (
                    handle.overlay.pending_edges(label)
                    >= self.overlay_fold_limit
                ):
                    self._rebuild_label(handle, label)
                    handle.overlay.fold(label)
            handle.version = version
        return version

    def stats(self) -> dict:
        with self._lock:
            handles = list(self._graphs.values())
        return {
            "graphs": len(handles),
            "vertices": sum(h.n for h in handles),
            "edges": sum(h.graph.num_edges for h in handles),
            "resident_bytes": sum(h.memory_bytes() for h in handles),
            "queries_served": sum(h.served() for h in handles),
            "per_graph": {
                h.name: {
                    "n": h.n,
                    "labels": len(h.matrices),
                    "residency": h.residency,
                    "formats": dict(h.formats),
                    "bytes": h.memory_bytes(),
                    "version": h.current_version(),
                    "persistent": h.volume is not None,
                    "queries_served": h.served(),
                    "overlay": (
                        h.overlay.stats() if h.overlay is not None else None
                    ),
                }
                for h in handles
            },
        }

"""Named-graph registry with format/backend residency.

The kernels operate on whatever matrices they are handed; the service
tier's job is to make sure hot graphs are *already* lowered — and, under
the hybrid backend, already in the right storage format — when a query
arrives.  :class:`GraphStore` owns that state: registering a graph
lowers its per-label adjacency matrices onto the service context once,
and the residency policy decides which labels additionally keep a
bit-packed view pinned (reusing the hybrid dispatcher's cached-view
machinery from :mod:`repro.backends.hybrid`), so fixpoints over dense
labels start word-parallel instead of paying the packing cost per query.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.locktrace import make_lock
from repro.errors import InvalidArgumentError, UnknownGraphError
from repro.graph import LabeledGraph

RESIDENCY_MODES = ("auto", "bit", "sparse")


@dataclass
class GraphHandle:
    """One registered graph: host container + resident device matrices."""

    name: str
    graph: LabeledGraph
    matrices: dict = field(default_factory=dict)  # label -> core Matrix
    residency: str = "auto"
    #: label -> resident formats after the residency pass ("sparse",
    #: "bit" or "both"); non-hybrid backends always report "sparse".
    formats: dict = field(default_factory=dict)
    queries_served: int = 0  # guarded-by: _lock
    _lock: object = field(
        default_factory=lambda: make_lock("GraphHandle._lock"),
        repr=False,
        compare=False,
    )

    @property
    def n(self) -> int:
        return self.graph.n

    @property
    def labels(self) -> list[str]:
        return self.graph.labels

    def record_served(self, count: int) -> None:
        """Count queries answered from this handle (worker threads)."""
        with self._lock:
            self.queries_served += count

    def served(self) -> int:
        with self._lock:
            return self.queries_served

    def memory_bytes(self) -> int:
        """Resident device bytes across all labels (every view)."""
        return sum(m.memory_bytes() for m in self.matrices.values())

    def free(self) -> None:
        for m in self.matrices.values():
            m.free()
        self.matrices = {}


class GraphStore:
    """Thread-safe registry of named, device-resident graphs."""

    def __init__(self, ctx):
        self.ctx = ctx
        self._lock = make_lock("GraphStore._lock")
        self._graphs: dict[str, GraphHandle] = {}  # guarded-by: _lock

    def register(
        self,
        name: str,
        graph: LabeledGraph,
        *,
        residency: str = "auto",
    ) -> GraphHandle:
        """Lower ``graph`` onto the service context under ``name``.

        ``residency`` (hybrid backend only; a no-op elsewhere):

        * ``"sparse"`` — stay CSR/COO-resident;
        * ``"bit"`` — pin every label's bit-packed view eagerly;
        * ``"auto"`` — pin the bit view only for labels whose density
          is at or above the dispatcher's crossover (those are the ones
          the cost model would route to the bit kernel anyway).

        Re-registering a name replaces (and frees) the previous entry.
        """
        if residency not in RESIDENCY_MODES:
            raise InvalidArgumentError(
                f"residency {residency!r} not in {RESIDENCY_MODES}"
            )
        matrices = graph.adjacency_matrices(self.ctx)
        formats = self._apply_residency(matrices, residency)
        handle = GraphHandle(
            name=name,
            graph=graph,
            matrices=matrices,
            residency=residency,
            formats=formats,
        )
        with self._lock:
            old = self._graphs.get(name)
            self._graphs[name] = handle
        if old is not None:
            old.free()
        return handle

    def _apply_residency(self, matrices: dict, residency: str) -> dict:
        from repro.backends.hybrid import HybridBackend

        backend = self.ctx.backend
        formats: dict[str, str] = {}
        if not isinstance(backend, HybridBackend):
            return {label: "sparse" for label in matrices}
        crossover = backend.policy.crossover_density
        for label, matrix in matrices.items():
            if residency == "bit" or (
                residency == "auto" and matrix.density >= crossover
            ):
                formats[label] = backend.ensure_resident(matrix.handle, "bit")
            else:
                formats[label] = matrix.handle.resident
        return formats

    def get(self, name: str) -> GraphHandle:
        with self._lock:
            handle = self._graphs.get(name)
        if handle is None:
            raise UnknownGraphError(name)
        return handle

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._graphs

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._graphs)

    def drop(self, name: str) -> None:
        with self._lock:
            handle = self._graphs.pop(name, None)
        if handle is None:
            raise UnknownGraphError(name)
        handle.free()

    def clear(self) -> None:
        with self._lock:
            handles = list(self._graphs.values())
            self._graphs.clear()
        for handle in handles:
            handle.free()

    def stats(self) -> dict:
        with self._lock:
            handles = list(self._graphs.values())
        return {
            "graphs": len(handles),
            "vertices": sum(h.n for h in handles),
            "edges": sum(h.graph.num_edges for h in handles),
            "resident_bytes": sum(h.memory_bytes() for h in handles),
            "queries_served": sum(h.served() for h in handles),
            "per_graph": {
                h.name: {
                    "n": h.n,
                    "labels": len(h.matrices),
                    "residency": h.residency,
                    "formats": dict(h.formats),
                    "bytes": h.memory_bytes(),
                    "queries_served": h.served(),
                }
                for h in handles
            },
        }

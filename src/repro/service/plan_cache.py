"""Compiled-plan cache: canonical query source → reusable plan.

Every RPQ/CFPQ evaluation starts with a compilation pipeline — parse
the regex, build the position automaton, determinize + minimize (or
normalize the grammar and build its RSM).  For a service answering the
same templated queries over and over, that work is pure overhead after
the first request.  :class:`PlanCache` memoizes it behind a canonical
key derived from the *query source* (so formatting differences hash to
the same plan) with LRU eviction and hit/miss/eviction counters.

Plans are immutable once built: the RPQ plan is the **minimized DFA**
(re-exported as an ε-free NFA — the smallest product graph an
equivalent query can produce, which also makes repeated queries cheap
to batch because the plan object is shared by identity); the CFPQ plan
is the query's RSM (plus the wCNF for plain CFGs, used by the matrix
engine).
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.analysis.locktrace import make_lock
from repro.automata.nfa import NFA
from repro.automata.regex_ast import Regex
from repro.automata.regex_parse import parse_regex
from repro.errors import InvalidArgumentError
from repro.grammar.cfg import CFG
from repro.grammar.rsm import RSM


@dataclass(frozen=True)
class QueryPlan:
    """An executable, cached compilation of one query.

    ``kind`` is ``"rpq"`` (``nfa`` set), ``"cfpq"`` (``rsm`` set,
    ``cfg`` set when the source was a plain grammar) or ``"dist"``
    (neither set — the plan is the validated semiring + label-weight
    assignment in ``meta``).  ``key`` is the canonical cache key
    (``None`` for uncacheable inputs such as prebuilt automata).
    ``compile_time_s`` is what the cache saves on every subsequent
    hit.
    """

    kind: str
    key: str | None
    nfa: NFA | None = None
    rsm: RSM | None = None
    cfg: CFG | None = None
    compile_time_s: float = 0.0
    meta: dict = field(default_factory=dict, compare=False)

    @property
    def states(self) -> int:
        if self.nfa is not None:
            return self.nfa.n
        if self.rsm is not None:
            return sum(box.nfa.n for box in self.rsm.boxes.values())
        return 0


def canonical_rpq_key(query) -> str | None:
    """Canonical cache key for a regular query, or None if uncacheable.

    Strings and ASTs canonicalize through the parsed AST's repr, so
    ``"a|b"`` and ``" a | b "`` share one plan.  Prebuilt NFAs carry no
    source to key on and bypass the cache.
    """
    if isinstance(query, str):
        query = parse_regex(query)
    if isinstance(query, Regex):
        return repr(query)
    if isinstance(query, NFA):
        return None
    raise InvalidArgumentError(
        f"unsupported RPQ query type {type(query).__name__}"
    )


def canonical_cfpq_key(query) -> str | None:
    """Canonical cache key for a context-free query."""
    if isinstance(query, str):
        query = CFG.from_text(query)
    if isinstance(query, CFG):
        return query.to_text()
    if isinstance(query, RSM):
        return None
    raise InvalidArgumentError(
        f"unsupported CFPQ query type {type(query).__name__}"
    )


def canonical_dist_key(query) -> str:
    """Canonical cache key for a distance (semiring) query.

    ``query`` is ``(semiring_name, weights)`` where ``weights`` is a
    sorted tuple of ``(label, weight)`` pairs or ``None``; both arrive
    pre-normalized from :meth:`QueryService.submit_distances`, so the
    repr is already canonical.
    """
    if (
        not isinstance(query, tuple)
        or len(query) != 2
        or not isinstance(query[0], str)
    ):
        raise InvalidArgumentError(
            "distance query must be a (semiring, weights) tuple"
        )
    name, weights = query
    return f"{name}|{weights!r}"


def compile_dist_plan(query, *, key: str | None = None) -> QueryPlan:
    """Validate a distance query into a plan.

    There is no automaton to build — "compilation" is resolving the
    semiring name through the registry (rejecting unknown algebras
    before the ticket ever reaches the scheduler) and pinning the
    normalized weight assignment in ``meta`` so the result cache can
    tag entries by algebra.
    """
    from repro.core.semiring import get_semiring

    t0 = time.perf_counter()
    name, weights = query
    s = get_semiring(name)
    if s.name != "min-plus":
        raise InvalidArgumentError(
            f"distance queries require the min-plus semiring, got {s.name!r}"
        )
    return QueryPlan(
        kind="dist",
        key=key,
        compile_time_s=time.perf_counter() - t0,
        meta={"semiring": s.name, "weights": weights},
    )


def compile_rpq_plan(query, *, key: str | None = None) -> QueryPlan:
    """Compile a regular query down to its minimal automaton."""
    t0 = time.perf_counter()
    if isinstance(query, NFA):
        nfa = query
        meta = {"construction": "prebuilt"}
    else:
        if isinstance(query, str):
            query = parse_regex(query)
        if not isinstance(query, Regex):
            raise InvalidArgumentError(
                f"unsupported RPQ query type {type(query).__name__}"
            )
        from repro.automata.dfa import determinize, minimize
        from repro.automata.glushkov import glushkov_nfa

        glushkov = glushkov_nfa(query)
        nfa = minimize(determinize(glushkov)).to_nfa()
        meta = {"construction": "mindfa", "glushkov_states": glushkov.n}
    return QueryPlan(
        kind="rpq",
        key=key,
        nfa=nfa,
        compile_time_s=time.perf_counter() - t0,
        meta=meta,
    )


def compile_cfpq_plan(query, *, key: str | None = None) -> QueryPlan:
    """Compile a context-free query to its RSM (and wCNF if a CFG)."""
    from repro.cfpq.engine import as_rsm

    t0 = time.perf_counter()
    cfg = None
    if isinstance(query, str):
        query = CFG.from_text(query)
    if isinstance(query, CFG):
        cfg = query
        from repro.grammar.cnf import cached_wcnf

        cached_wcnf(cfg)  # warm the wCNF for the matrix engine
    rsm = as_rsm(query)
    return QueryPlan(
        kind="cfpq",
        key=key,
        rsm=rsm,
        cfg=cfg,
        compile_time_s=time.perf_counter() - t0,
    )


class PlanCache:
    """Thread-safe LRU cache of :class:`QueryPlan` objects.

    ``capacity`` bounds the entry count; the least-recently-*used*
    entry is evicted (hits refresh recency).  Counters are cumulative
    for the cache's lifetime and exposed via :meth:`stats` — the
    service's E12 acceptance asserts a repeated query costs zero
    recompilation by reading them.
    """

    def __init__(self, capacity: int = 128):
        if capacity < 1:
            raise InvalidArgumentError("plan cache capacity must be >= 1")
        self.capacity = capacity
        self._lock = make_lock("PlanCache._lock")
        self._entries: OrderedDict = OrderedDict()  # guarded-by: _lock
        self.hits = 0  # guarded-by: _lock
        self.misses = 0  # guarded-by: _lock
        self.evictions = 0  # guarded-by: _lock

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, kind: str, query) -> QueryPlan:
        """Return the cached plan for ``query``, compiling on miss.

        Uncacheable queries (prebuilt NFA/RSM objects) are compiled
        fresh each call and never stored; they count as neither hit nor
        miss.
        """
        if kind == "rpq":
            key = canonical_rpq_key(query)
        elif kind == "cfpq":
            key = canonical_cfpq_key(query)
        elif kind == "dist":
            key = canonical_dist_key(query)
        else:
            raise InvalidArgumentError(f"unknown plan kind {kind!r}")

        if key is not None:
            with self._lock:
                plan = self._entries.get((kind, key))
                if plan is not None:
                    self.hits += 1
                    self._entries.move_to_end((kind, key))
                    return plan
                self.misses += 1

        compile_fn = {
            "rpq": compile_rpq_plan,
            "cfpq": compile_cfpq_plan,
            "dist": compile_dist_plan,
        }[kind]
        plan = compile_fn(query, key=key)

        if key is not None:
            with self._lock:
                if (kind, key) not in self._entries:
                    self._entries[(kind, key)] = plan
                    while len(self._entries) > self.capacity:
                        self._entries.popitem(last=False)
                        self.evictions += 1
                else:
                    # Lost a compile race: reuse the incumbent so
                    # identical queries keep sharing one plan object.
                    self._entries.move_to_end((kind, key))
                    plan = self._entries[(kind, key)]
        return plan

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> dict:
        with self._lock:
            lookups = self.hits + self.misses
            return {
                "entries": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "hit_ratio": self.hits / lookups if lookups else 0.0,
            }

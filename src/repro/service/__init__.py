"""Concurrent boolean query service — the serving tier above the kernels.

The library's lower layers are pure: formats, backends, and query
engines that compile and evaluate one query at a time.  This package
adds the stateful tier a production deployment needs (the GraphBLAS
"primitives + system above them" architecture):

* :class:`~repro.service.graph_store.GraphStore` — named graphs kept
  device-resident, with hybrid-format residency hints;
* :class:`~repro.service.plan_cache.PlanCache` — LRU of compiled query
  plans (regex → minimized DFA, grammar → RSM/wCNF) with hit/miss/
  eviction counters;
* :class:`~repro.service.scheduler.QueryScheduler` — bounded admission,
  a worker pool, per-query deadlines with cooperative cancellation, and
  multi-query batching (same-graph RPQ reachability queries coalesce
  into one multi-source fixpoint);
* :class:`~repro.service.stats.ServiceStats` — per-stage latency
  percentiles, batch sizes, queue depth, cache ratios;
* :class:`~repro.service.core.QueryService` — the facade wiring it all
  to one shared, thread-safe :class:`~repro.core.context.Context`.

``python -m repro serve --selftest`` runs the concurrent end-to-end
check (:func:`~repro.service.selftest.run_selftest`).
"""

from repro.service.core import QueryService
from repro.service.graph_store import GraphHandle, GraphStore
from repro.service.plan_cache import PlanCache, QueryPlan
from repro.service.scheduler import QueryScheduler, QueryTicket
from repro.service.selftest import run_selftest
from repro.service.stats import LatencySummary, ServiceStats, StatsSnapshot

__all__ = [
    "GraphHandle",
    "GraphStore",
    "LatencySummary",
    "PlanCache",
    "QueryPlan",
    "QueryScheduler",
    "QueryService",
    "QueryTicket",
    "ServiceStats",
    "StatsSnapshot",
    "run_selftest",
]

"""Concurrent boolean query service — the serving tier above the kernels.

The library's lower layers are pure: formats, backends, and query
engines that compile and evaluate one query at a time.  This package
adds the stateful tier a production deployment needs (the GraphBLAS
"primitives + system above them" architecture):

* :class:`~repro.service.graph_store.GraphStore` — named graphs kept
  device-resident, with hybrid-format residency hints;
* :class:`~repro.service.plan_cache.PlanCache` — LRU of compiled query
  plans (regex → minimized DFA, grammar → RSM/wCNF) with hit/miss/
  eviction counters;
* :class:`~repro.service.scheduler.QueryScheduler` — bounded admission,
  a worker pool, per-query deadlines with cooperative cancellation, and
  multi-query batching (same-graph RPQ reachability queries coalesce
  into one multi-source fixpoint);
* :class:`~repro.service.result_cache.ResultCache` — cross-request LRU
  of query answers keyed on (graph version, plan, source), invalidated
  by the version bump every edge delta applies;
* :class:`~repro.service.stats.ServiceStats` — per-stage latency
  percentiles, batch sizes, queue depth, cache ratios;
* :class:`~repro.service.core.QueryService` — the facade wiring it all
  to one shared, thread-safe :class:`~repro.core.context.Context`.

With a store root attached (``store_root=`` or ``REPRO_STORE``), the
graph registry round-trips to disk through :mod:`repro.store`:
``persist_graph`` writes immutable snapshot generations,
``restore_graph`` / ``restore_all`` warm-start from them (BitMatrix
snapshots come back as zero-copy ``np.memmap`` views), and
``add_edges`` / ``remove_edges`` WAL-log every mutation.

``python -m repro serve --selftest`` runs the concurrent end-to-end
check (:func:`~repro.service.selftest.run_selftest`).
"""

from repro.service.core import QueryService
from repro.service.graph_store import GraphHandle, GraphStore
from repro.service.plan_cache import PlanCache, QueryPlan
from repro.service.result_cache import ResultCache
from repro.service.scheduler import QueryScheduler, QueryTicket
from repro.service.selftest import run_selftest
from repro.service.stats import LatencySummary, ServiceStats, StatsSnapshot

__all__ = [
    "GraphHandle",
    "GraphStore",
    "LatencySummary",
    "PlanCache",
    "QueryPlan",
    "QueryScheduler",
    "QueryService",
    "QueryTicket",
    "ResultCache",
    "ServiceStats",
    "StatsSnapshot",
    "run_selftest",
]

"""Service self-test: the `python -m repro serve --selftest` entry.

Spins up a real :class:`~repro.service.core.QueryService` (worker
threads, plan cache, batching — everything), fires a concurrent mixed
workload at it from client threads, and verifies every answer against
the sequential single-query engines.  A second phase exercises the
persistent store (:mod:`repro.store`): persist → mutate via WAL-logged
deltas → tear the log tail → stop → warm-restart a fresh service from
disk, asserting recovery to the last committed version, result
agreement, and — under the hybrid backend — that BitMatrix snapshots
came back as zero-copy mmap views (arena ``mapped_bytes``, not heap
copies).  Later phases cover the fused-accumulate allocation profile,
the tiled bit kernels, and incremental evaluation (interleaved
mutations must warm-start, removals must recompute, answers must track
the oracle).  Exercised by CI under both ``REPRO_HYBRID`` settings;
exit status is the install check.
"""

from __future__ import annotations

import tempfile
import threading
from pathlib import Path

from repro.analysis import locktrace
from repro.datasets.random_graphs import uniform_random_graph
from repro.errors import SpblaError
from repro.service.core import QueryService

#: Regex templates instantiated over the demo graph's labels.
SELFTEST_QUERIES = (
    "a b* c",
    "(a | b)+",
    "a (b c)*",
    "(a | c) b? c",
)

SELFTEST_GRAMMAR = "S -> a S b | a b"


def run_selftest(
    *,
    workers: int = 3,
    queries: int = 24,
    seed: int = 20210705,
    verbose: bool = True,
) -> int:
    """Run the concurrent self-test; returns a process exit code."""

    def say(msg: str) -> None:
        if verbose:
            print(msg)

    n = 96
    graph = uniform_random_graph(n, 4 * n, labels=("a", "b", "c"), seed=seed)

    with QueryService(
        workers=workers, max_batch=8, queue_limit=256, autotune=True
    ) as service:
        say(
            f"query service up: backend={service.ctx.backend_name}, "
            f"{workers} workers"
        )
        service.register_graph("selftest", graph, residency="auto")

        # Sequential oracle on an independent plain context.
        import repro
        from repro.cfpq.engine import cfpq
        from repro.rpq import rpq_pairs

        from repro.grammar.cfg import CFG

        oracle_ctx = repro.Context(backend="cubool")
        oracle = {q: rpq_pairs(graph, q, oracle_ctx) for q in SELFTEST_QUERIES}
        cfpq_index = cfpq(graph, CFG.from_text(SELFTEST_GRAMMAR), oracle_ctx)
        cfpq_oracle = cfpq_index.pairs()
        cfpq_index.free()

        # Concurrent mixed workload: each client thread submits a slice
        # of reach queries (repeating templates, so the plan cache and
        # the batcher both get traffic) and checks its own answers.
        failures: list[str] = []
        lock = threading.Lock()

        def client(cid: int) -> None:
            rng_sources = [(cid * 7 + 3 * i) % n for i in range(queries)]
            tickets = [
                service.submit_reach(
                    "selftest",
                    SELFTEST_QUERIES[(cid + i) % len(SELFTEST_QUERIES)],
                    source=src,
                    timeout=30.0,
                )
                for i, src in enumerate(rng_sources)
            ]
            for i, (src, ticket) in enumerate(zip(rng_sources, tickets)):
                q = SELFTEST_QUERIES[(cid + i) % len(SELFTEST_QUERIES)]
                try:
                    got = ticket.result(timeout=60.0)
                # The service wraps everything into the taxonomy
                # (QueryExecutionError for non-taxonomy escapes);
                # TimeoutError is ticket.result's own still-pending path.
                except (SpblaError, TimeoutError) as exc:
                    with lock:
                        failures.append(f"client {cid} query {q!r}: {exc!r}")
                    continue
                want = {v for u, v in oracle[q] if u == src}
                if got != want:
                    with lock:
                        failures.append(
                            f"client {cid} query {q!r} from {src}: "
                            f"got {len(got)} targets, want {len(want)}"
                        )

        clients = [
            threading.Thread(target=client, args=(cid,)) for cid in range(4)
        ]
        for t in clients:
            t.start()
        for t in clients:
            t.join()

        # One all-pairs and one CFPQ request through the same service.
        pairs_got = service.pairs("selftest", SELFTEST_QUERIES[0], timeout=60.0)
        if pairs_got != oracle[SELFTEST_QUERIES[0]]:
            failures.append("all-pairs result mismatch")
        cfpq_got = service.cfpq("selftest", SELFTEST_GRAMMAR, timeout=60.0)
        if cfpq_got != cfpq_oracle:
            failures.append("cfpq result mismatch")

        snapshot = service.stats()
        say("")
        say(snapshot.render())

        # Lock sentinel (REPRO_CHECK_LOCKS=1): the concurrent workload
        # above exercised every service lock under instrumentation; any
        # ordering inversion / held-across-kernel / long-hold hazard it
        # recorded is a failure.
        tracer = locktrace.tracer()
        if tracer is not None:
            say("")
            say(tracer.report())
            for hazard in tracer.hazards():
                failures.append(f"lock sentinel: {hazard.render()}")

        # Structural health checks: the repeated templates must have hit
        # the plan cache, and everything submitted must be accounted for.
        pc = snapshot.plan_cache
        if pc["hits"] == 0:
            failures.append("plan cache saw no hits on a repeating workload")
        if snapshot.counters.get("completed", 0) < 4 * queries:
            failures.append(
                f"only {snapshot.counters.get('completed', 0)} of "
                f"{4 * queries + 2} queries completed"
            )

        # Cross-request result cache: an exact repeat of an already-
        # answered (graph version, plan, source) triple must short-
        # circuit without re-running the fixpoint.
        repeat_q, repeat_src = SELFTEST_QUERIES[0], 3 % n
        first = service.reach("selftest", repeat_q, source=repeat_src)
        second = service.reach("selftest", repeat_q, source=repeat_src)
        rc = service.stats().result_cache
        if first != second:
            failures.append("result cache returned a different answer")
        if rc and rc["hits"] == 0:
            failures.append("result cache saw no hits on an exact repeat")

        oracle_ctx.finalize()

    # -- phase 2: persistent store round-trip ------------------------------
    with tempfile.TemporaryDirectory(prefix="repro-store-") as tmp:
        failures.extend(_store_phase(tmp, graph, workers=workers, say=say))

    # -- phase 3: fused fixpoint allocation profile ------------------------
    failures.extend(_fused_phase(say=say))

    # -- phase 4: tiled bit kernels vs flat --------------------------------
    failures.extend(_tiled_phase(say=say))

    # -- phase 5: incremental evaluation over live deltas ------------------
    failures.extend(_incremental_phase(say=say))

    # -- phase 6: value-semiring queries through the service ---------------
    failures.extend(_semiring_phase(say=say))

    # -- runtime vs static lock graph --------------------------------------
    tracer = locktrace.tracer()
    if tracer is not None:
        failures.extend(_lock_graph_crosscheck(tracer, say=say))

    if failures:
        say("")
        for f in failures:
            say(f"FAIL: {f}")
        return 1
    say("")
    say(
        f"selftest ok: {4 * queries} concurrent reach queries + all-pairs "
        f"+ cfpq match the sequential engines; store warm-restart "
        f"(mmap snapshots + WAL recovery) verified; fused bit fixpoint "
        f"holds arena peak flat; tiled kernels agree with flat; "
        f"incremental warm starts track interleaved mutations; min-plus "
        f"distance queries match the dense oracle"
    )
    return 0


def _lock_graph_crosscheck(tracer, *, say) -> list[str]:
    """Assert runtime-observed lock-order edges ⊆ the static lock graph.

    The sentinel only sees executed interleavings; reprolint's
    whole-program pass claims to cover every resolvable path.  An edge
    the runtime saw but the static graph lacks therefore means one of
    two bugs worth failing on: the call-graph resolution lost a path
    (static-analysis regression), or a lock was created/ordered through
    dynamic indirection the index cannot see.
    """
    import repro
    from repro.analysis.dataflow import static_lock_graph

    runtime = tracer.order_graph()
    static = static_lock_graph([Path(repro.__file__).parent])
    missing = sorted(
        (held, acquired)
        for held, successors in runtime.items()
        for acquired in successors
        if acquired not in static.get(held, set())
    )
    n_runtime = sum(len(v) for v in runtime.values())
    n_static = sum(len(v) for v in static.values())
    if not missing:
        say(
            f"lock-edge cross-check ok: {n_runtime} runtime edge(s) within "
            f"{n_static} static edge(s)"
        )
    return [
        f"lock-edge cross-check: runtime edge {held!r} -> {acquired!r} "
        f"is absent from the static lock graph"
        for held, acquired in missing
    ]


def _fused_phase(*, say) -> list[str]:
    """Fused accumulate contract: a bit-path fixpoint must allocate
    exactly one output buffer per iteration — arena ``peak_bytes`` over
    the live set stays constant from the second iteration on."""
    import repro

    failures: list[str] = []
    ctx = repro.Context(backend="cubool", hybrid="bit")
    try:
        backend = ctx.backend
        arena = ctx.device.arena
        cur = ctx.matrix_random((128, 128), 0.05, seed=11)
        peaks: list[int] = []
        with backend.fixpoint():
            # Iteration 0 pays the one-time sparse->bit packing of the
            # operand; steady-state iterations must be allocation-flat.
            for _ in range(5):
                arena.reset_peak()
                step = cur.mxm(cur, accumulate=cur)
                peaks.append(arena.peak_bytes)
                cur.free()
                cur = step
        cur.free()
        if len(set(peaks[1:])) != 1:
            failures.append(
                f"fused bit fixpoint arena peak not flat across "
                f"iterations: {peaks}"
            )
        else:
            say(
                f"fused phase ok: arena peak flat at {peaks[-1]} "
                f"bytes/iteration over {len(peaks)} fixpoint steps"
            )
    finally:
        ctx.finalize()
    return failures


def _tiled_phase(*, say) -> list[str]:
    """Tiled bit route: the zero-tile-skipping kernels must agree with
    the flat kernels on a block-diagonal transitive closure, actually
    engage a tiled mxm kernel, and — when ``REPRO_BIT_WORKERS`` widens
    the pool — run the worker fan-out under the lock sentinel."""
    import numpy as np

    from repro.backends import get_backend
    from repro.backends.hybrid import HybridBackend, HybridPolicy

    failures: list[str] = []
    n, blocks, tile = 1024, 4, 256
    rng = np.random.default_rng(0x20210705)
    dense = np.zeros((n, n), dtype=bool)
    bs = n // blocks
    for b in range(blocks):
        lo = b * bs
        dense[lo:lo + bs, lo:lo + bs] = rng.random((bs, bs)) < 0.04

    def closure_pairs(tiled: bool) -> tuple[set, HybridBackend]:
        policy = HybridPolicy(mode="bit", tiled=tiled, tile_size=tile)
        backend = HybridBackend(inner=get_backend("cubool"), policy=policy)
        if tiled and backend.bit_workers > 1:
            # Force the parallel threshold to zero so CI's
            # REPRO_BIT_WORKERS=2 exercises the pool even on a probe
            # this small (the autotuned threshold would stay serial).
            policy = HybridPolicy(
                mode="bit", tiled=True, tile_size=tile,
                tiled_parallel_min_words=0,
            )
            backend = HybridBackend(inner=get_backend("cubool"), policy=policy)
        rows, cols = np.nonzero(dense)
        cur = backend.matrix_from_coo(
            rows.astype(np.int64), cols.astype(np.int64), (n, n)
        )
        with backend.fixpoint():
            for _ in range(4):
                step = backend.mxm(cur, cur, accumulate=cur)
                cur.free()
                cur = step
        r, c = cur.storage.to_coo_arrays()
        pairs = set(zip(r.tolist(), c.tolist()))
        cur.free()
        return pairs, backend

    tiled_pairs, tiled_backend = closure_pairs(tiled=True)
    flat_pairs, _ = closure_pairs(tiled=False)
    if tiled_pairs != flat_pairs:
        failures.append(
            f"tiled closure disagrees with flat: {len(tiled_pairs)} vs "
            f"{len(flat_pairs)} pairs"
        )
    mxm_kernels = tiled_backend.kernel_counts.get("mxm", {})
    if not any(k.startswith("tiled") for k in mxm_kernels):
        failures.append(
            f"block-diagonal closure never engaged a tiled mxm kernel "
            f"(kernels: {dict(mxm_kernels)})"
        )
    if not failures:
        times = {
            op: {k: f"{s * 1e3:.1f}ms" for k, s in ts.items()}
            for op, ts in tiled_backend.kernel_times.items()
        }
        say(
            f"tiled phase ok: closure matches flat over {len(tiled_pairs)} "
            f"pairs, kernels {dict(mxm_kernels)}, "
            f"workers={tiled_backend.bit_workers}, times {times}"
        )
    return failures


def _incremental_phase(*, say) -> list[str]:
    """Incremental evaluation: interleave mutations with queries and
    assert (a) small adds-only deltas take the warm-start path, (b)
    removals force a full recompute, (c) every answer — warm or cold —
    agrees with a from-scratch oracle over the mutated graph, and (d)
    the masked-accumulate kernels the warm path relies on record their
    ``_masked`` telemetry on the hybrid bit route."""
    import numpy as np

    import repro
    from repro.graph import LabeledGraph
    from repro.rpq import rpq_pairs

    failures: list[str] = []
    n = 96
    graph = uniform_random_graph(n, 4 * n, labels=("a", "b"), seed=0xE15)
    query = "(a | b)+"
    probe_src = 5
    rng = np.random.default_rng(0xE15)

    def oracle_pairs(g):
        ctx = repro.Context(backend="cubool")
        try:
            return rpq_pairs(g, query, ctx)
        finally:
            ctx.finalize()

    with QueryService(workers=2) as svc:
        svc.register_graph("incr", graph, residency="auto")
        current = LabeledGraph.from_triples(graph.triples(), n=n)
        want = oracle_pairs(current)
        if svc.pairs("incr", query) != want:
            failures.append("incremental phase: cold all-pairs diverges")
        if svc.reach("incr", query, source=probe_src) != {
            v for u, v in want if u == probe_src
        }:
            failures.append("incremental phase: cold reach diverges")

        # Rounds of small adds-only deltas; each re-query must be able
        # to restart from the previous round's cached fixed point.
        rounds = 3
        for i in range(rounds):
            delta = rng.integers(0, n, size=(4, 2))
            svc.add_edges("incr", "a", delta)
            for u, v in delta:
                current.add_edge(int(u), "a", int(v))
            want = oracle_pairs(current)
            if svc.pairs("incr", query) != want:
                failures.append(f"incremental round {i}: pairs diverge")
            if svc.reach("incr", query, source=probe_src) != {
                v for u, v in want if u == probe_src
            }:
                failures.append(f"incremental round {i}: reach diverges")
        counters = svc.stats().counters
        if counters.get("incremental_evals", 0) < rounds:
            failures.append(
                f"adds-only re-queries took the full path "
                f"(incremental_evals="
                f"{counters.get('incremental_evals', 0)}, want >= {rounds})"
            )

        # A removal breaks the adds-only precondition: the next query
        # must recompute from scratch and track the removal.
        full_before = counters.get("full_evals", 0)
        u, v = current.edges["a"][0]
        svc.remove_edges("incr", "a", [(u, v)])
        current.edges["a"] = [e for e in current.edges["a"] if e != (u, v)]
        if svc.pairs("incr", query) != oracle_pairs(current):
            failures.append("post-removal pairs diverge from oracle")
        counters = svc.stats().counters
        if counters.get("full_evals", 0) <= full_before:
            failures.append(
                "removal delta did not force a full re-evaluation"
            )
        overlay = svc.stats().graph_store["per_graph"]["incr"].get("overlay")
        if not overlay or overlay["journal_entries"] < rounds + 1:
            failures.append(
                f"overlay journal missing mutation history: {overlay}"
            )

    # Masked-accumulate telemetry: the warm path's mask pushdown must be
    # visible as `_masked` kernel counts when forced onto the bit route
    # (deterministic regardless of the REPRO_HYBRID dispatch setting).
    from repro.backends import get_backend
    from repro.backends.hybrid import HybridBackend, HybridPolicy

    backend = HybridBackend(
        inner=get_backend("cubool"), policy=HybridPolicy(mode="bit")
    )
    rows = np.arange(64, dtype=np.int64)
    a = backend.matrix_from_coo(rows, (rows + 1) % 64, (64, 64))
    out = backend.mxm(a, a, mask=a)
    out.free()
    a.free()
    masked = [
        k for k in backend.kernel_counts.get("mxm", {})
        if k.endswith("_masked")
    ]
    if not masked:
        failures.append(
            f"masked mxm on the bit route recorded no _masked kernel "
            f"(kernels: {dict(backend.kernel_counts.get('mxm', {}))})"
        )

    if not failures:
        say(
            f"incremental phase ok: {rounds} adds-only rounds warm-"
            f"started ({counters.get('incremental_evals', 0)} incremental "
            f"vs {counters.get('full_evals', 0)} full evals), removal "
            f"forced recompute, masked kernels {masked}"
        )
    return failures


def _semiring_phase(*, say) -> list[str]:
    """Min-plus distance queries through the full service stack.

    The ``dist`` query kind rides the same plan cache / result cache /
    scheduler machinery as the boolean kinds but evaluates on the value
    backend under the min-plus semiring.  Asserts (a) the answers match
    a dense Bellman-Ford oracle, (b) repeats hit the plan cache and the
    result cache, (c) the result-cache key is semiring-tagged so a
    distance answer can never shadow a boolean one, and (d) unknown or
    non-tropical semirings are rejected before admission."""
    import numpy as np

    from repro.errors import InvalidArgumentError

    failures: list[str] = []
    n = 48
    graph = uniform_random_graph(n, 3 * n, labels=("a", "b"), seed=0xE17)
    weights = {"a": 1.0, "b": 2.5}

    # Dense oracle: plain Bellman-Ford over the same weight assignment.
    dense = np.full((n, n), np.inf)
    for label, pairs in graph.edges.items():
        for u, v in pairs:
            dense[u, v] = min(dense[u, v], weights[label])
    src = 3
    want_dist = np.full(n, np.inf)
    want_dist[src] = 0.0
    for _ in range(n):
        relaxed = np.minimum(want_dist, (want_dist[:, None] + dense).min(axis=0))
        if np.array_equal(relaxed, want_dist):
            break
        want_dist = relaxed
    want = {(int(v), float(d)) for v, d in enumerate(want_dist) if d < np.inf}

    with QueryService(workers=2) as svc:
        svc.register_graph("weighted", graph, residency="auto")
        first = svc.distances("weighted", source=src, weights=weights)
        if first != want:
            failures.append(
                f"min-plus distances diverge from the dense oracle "
                f"({len(first)} vs {len(want)} reachable vertices)"
            )
        second = svc.distances("weighted", source=src, weights=weights)
        if second != first:
            failures.append("repeated distance query changed its answer")
        snap = svc.stats()
        if snap.plan_cache["hits"] == 0:
            failures.append("distance repeat missed the plan cache")
        rc = snap.result_cache
        if rc and rc["hits"] == 0:
            failures.append("distance repeat missed the result cache")
        # Semiring tagging: the same graph answers a boolean query
        # without either side shadowing the other.
        reach = svc.reach("weighted", "a b*", source=src)
        if not isinstance(reach, set) or any(
            isinstance(x, tuple) for x in reach
        ):
            failures.append(
                "boolean reach answer was shadowed by a distance entry"
            )
        try:
            svc.distances("weighted", source=src, semiring="plus-times")
            failures.append("non-tropical semiring was not rejected")
        except InvalidArgumentError:
            pass
        try:
            svc.distances("weighted", source=src, semiring="no-such-algebra")
            failures.append("unknown semiring was not rejected")
        except InvalidArgumentError:
            pass
    if not failures:
        say(
            f"semiring phase ok: min-plus distances to {len(want)} vertices "
            f"match the dense oracle; plan + result caches hit on repeat; "
            f"bad algebras rejected pre-admission"
        )
    return failures


def _store_phase(store_root: str, graph, *, workers: int, say) -> list[str]:
    """Persist → mutate → tear the WAL → warm-restart → verify."""
    import repro
    from repro.backends.hybrid import HybridBackend
    from repro.graph import LabeledGraph
    from repro.rpq import rpq_pairs

    failures: list[str] = []
    name = "persisted"
    probe_q = SELFTEST_QUERIES[0]
    probe_src = 1
    delta_edges = [(0, graph.n - 1), (1, graph.n - 2)]

    # Service A: register, snapshot, then mutate past the snapshot so
    # the restart must replay the WAL suffix on top of generation 1.
    with QueryService(workers=workers, store_root=store_root) as svc:
        hybrid = isinstance(svc.ctx.backend, HybridBackend)
        # "bit" residency pins packed views, so the snapshot carries bit
        # containers for the mmap warm start (hybrid runs only).
        svc.register_graph(
            name, graph, residency="bit" if hybrid else "auto"
        )
        svc.persist_graph(name)
        version = svc.add_edges(name, "a", delta_edges)
        answer_before = svc.reach(name, probe_q, source=probe_src)

    # Crash simulation: a torn, uncommitted record at the log tail.
    wal_path = Path(store_root) / "volumes" / name / "wal.log"
    with open(wal_path, "ab") as f:
        f.write(b"RWAL\x01\x01\x00\x00torn-tail-garbage")

    # Service B: a fresh process-equivalent, warm-started from disk.
    with QueryService(workers=workers, store_root=store_root) as svc:
        arena = svc.ctx.device.arena
        mapped_before = arena.stats().mapped_bytes
        restored = svc.restore_all()
        if name not in restored:
            failures.append(f"restore_all() did not surface {name!r}")
            return failures
        handle = svc.graphs.get(name)
        if handle.current_version() != version:
            failures.append(
                f"warm restart recovered version {handle.current_version()}, "
                f"want {version} (torn tail must not lose committed deltas)"
            )
        hybrid = isinstance(svc.ctx.backend, HybridBackend)
        if hybrid:
            mapped = arena.stats().mapped_bytes - mapped_before
            if mapped <= 0:
                failures.append(
                    "no arena mapped_bytes after restore — bit snapshots "
                    "were heap-copied instead of mmapped"
                )
            # Labels untouched by the delta must be file-backed views:
            # no-copy means the words array does not own its data.
            for label in ("b", "c"):
                m = handle.matrices[label].handle
                if m.bit is None:
                    failures.append(f"label {label!r} lost its bit view")
                    continue
                words = m.bit.storage.words
                if words.flags["OWNDATA"] or words.flags["WRITEABLE"]:
                    failures.append(
                        f"label {label!r} words are a heap copy, not a "
                        f"read-only mmap view"
                    )
        answer_after = svc.reach(name, probe_q, source=probe_src)
        if answer_after != answer_before:
            failures.append(
                "warm-restarted service disagrees with pre-restart answers"
            )
        # Independent oracle over the mutated graph.
        mutated = LabeledGraph(n=graph.n)
        for label, pairs in graph.edges.items():
            mutated.edges[label].extend(pairs)
        for u, v in delta_edges:
            mutated.add_edge(u, "a", v)
        oracle_ctx = repro.Context(backend="cubool")
        want = {
            t for s, t in rpq_pairs(mutated, probe_q, oracle_ctx)
            if s == probe_src
        }
        oracle_ctx.finalize()
        if answer_after != want:
            failures.append(
                f"restored graph answers diverge from the oracle "
                f"({len(answer_after)} vs {len(want)} targets)"
            )
        say(
            f"store phase ok: gen 1 + WAL replay to v{version}, "
            + ("mmap-backed bit views, " if hybrid else "")
            + "answers match"
        )
    return failures

"""Service self-test: the `python -m repro serve --selftest` entry.

Spins up a real :class:`~repro.service.core.QueryService` (worker
threads, plan cache, batching — everything), fires a concurrent mixed
workload at it from client threads, and verifies every answer against
the sequential single-query engines.  Exercised by CI under both
``REPRO_HYBRID`` settings; exit status is the install check.
"""

from __future__ import annotations

import threading

from repro.analysis import locktrace
from repro.datasets.random_graphs import uniform_random_graph
from repro.errors import SpblaError
from repro.service.core import QueryService

#: Regex templates instantiated over the demo graph's labels.
SELFTEST_QUERIES = (
    "a b* c",
    "(a | b)+",
    "a (b c)*",
    "(a | c) b? c",
)

SELFTEST_GRAMMAR = "S -> a S b | a b"


def run_selftest(
    *,
    workers: int = 3,
    queries: int = 24,
    seed: int = 20210705,
    verbose: bool = True,
) -> int:
    """Run the concurrent self-test; returns a process exit code."""

    def say(msg: str) -> None:
        if verbose:
            print(msg)

    n = 96
    graph = uniform_random_graph(n, 4 * n, labels=("a", "b", "c"), seed=seed)

    with QueryService(
        workers=workers, max_batch=8, queue_limit=256, autotune=True
    ) as service:
        say(
            f"query service up: backend={service.ctx.backend_name}, "
            f"{workers} workers"
        )
        service.register_graph("selftest", graph, residency="auto")

        # Sequential oracle on an independent plain context.
        import repro
        from repro.cfpq.engine import cfpq
        from repro.rpq import rpq_pairs

        from repro.grammar.cfg import CFG

        oracle_ctx = repro.Context(backend="cubool")
        oracle = {q: rpq_pairs(graph, q, oracle_ctx) for q in SELFTEST_QUERIES}
        cfpq_index = cfpq(graph, CFG.from_text(SELFTEST_GRAMMAR), oracle_ctx)
        cfpq_oracle = cfpq_index.pairs()
        cfpq_index.free()

        # Concurrent mixed workload: each client thread submits a slice
        # of reach queries (repeating templates, so the plan cache and
        # the batcher both get traffic) and checks its own answers.
        failures: list[str] = []
        lock = threading.Lock()

        def client(cid: int) -> None:
            rng_sources = [(cid * 7 + 3 * i) % n for i in range(queries)]
            tickets = [
                service.submit_reach(
                    "selftest",
                    SELFTEST_QUERIES[(cid + i) % len(SELFTEST_QUERIES)],
                    source=src,
                    timeout=30.0,
                )
                for i, src in enumerate(rng_sources)
            ]
            for i, (src, ticket) in enumerate(zip(rng_sources, tickets)):
                q = SELFTEST_QUERIES[(cid + i) % len(SELFTEST_QUERIES)]
                try:
                    got = ticket.result(timeout=60.0)
                # The service wraps everything into the taxonomy
                # (QueryExecutionError for non-taxonomy escapes);
                # TimeoutError is ticket.result's own still-pending path.
                except (SpblaError, TimeoutError) as exc:
                    with lock:
                        failures.append(f"client {cid} query {q!r}: {exc!r}")
                    continue
                want = {v for u, v in oracle[q] if u == src}
                if got != want:
                    with lock:
                        failures.append(
                            f"client {cid} query {q!r} from {src}: "
                            f"got {len(got)} targets, want {len(want)}"
                        )

        clients = [
            threading.Thread(target=client, args=(cid,)) for cid in range(4)
        ]
        for t in clients:
            t.start()
        for t in clients:
            t.join()

        # One all-pairs and one CFPQ request through the same service.
        pairs_got = service.pairs("selftest", SELFTEST_QUERIES[0], timeout=60.0)
        if pairs_got != oracle[SELFTEST_QUERIES[0]]:
            failures.append("all-pairs result mismatch")
        cfpq_got = service.cfpq("selftest", SELFTEST_GRAMMAR, timeout=60.0)
        if cfpq_got != cfpq_oracle:
            failures.append("cfpq result mismatch")

        snapshot = service.stats()
        say("")
        say(snapshot.render())

        # Lock sentinel (REPRO_CHECK_LOCKS=1): the concurrent workload
        # above exercised every service lock under instrumentation; any
        # ordering inversion / held-across-kernel / long-hold hazard it
        # recorded is a failure.
        tracer = locktrace.tracer()
        if tracer is not None:
            say("")
            say(tracer.report())
            for hazard in tracer.hazards():
                failures.append(f"lock sentinel: {hazard.render()}")

        # Structural health checks: the repeated templates must have hit
        # the plan cache, and everything submitted must be accounted for.
        pc = snapshot.plan_cache
        if pc["hits"] == 0:
            failures.append("plan cache saw no hits on a repeating workload")
        if snapshot.counters.get("completed", 0) < 4 * queries:
            failures.append(
                f"only {snapshot.counters.get('completed', 0)} of "
                f"{4 * queries + 2} queries completed"
            )

        oracle_ctx.finalize()

    if failures:
        say("")
        for f in failures:
            say(f"FAIL: {f}")
        return 1
    say("")
    say(
        f"selftest ok: {4 * queries} concurrent reach queries + all-pairs "
        f"+ cfpq all match the sequential engines"
    )
    return 0

"""`QueryService` — the in-process concurrent boolean query server.

Ties the service tier together: a :class:`~repro.service.graph_store.
GraphStore` of resident graphs, a :class:`~repro.service.plan_cache.
PlanCache` of compiled queries, and a :class:`~repro.service.scheduler.
QueryScheduler` that batches and evaluates under deadlines — all over
one shared :class:`~repro.core.context.Context` whose backends and
device arena are thread-safe.

Typical use::

    import repro.service as svc

    with svc.QueryService(workers=4) as service:
        service.register_graph("social", graph, residency="auto")
        t1 = service.submit_reach("social", "follows+", source=42)
        t2 = service.submit_reach("social", "follows+", source=7)
        print(t1.result(), t2.result())      # one shared fixpoint
        print(service.stats().render())

Synchronous convenience wrappers (:meth:`QueryService.reach`,
:meth:`QueryService.pairs`, :meth:`QueryService.cfpq`) submit and wait.
"""

from __future__ import annotations

from repro.errors import InvalidArgumentError
from repro.graph import LabeledGraph
from repro.service.graph_store import GraphStore
from repro.service.plan_cache import PlanCache
from repro.service.scheduler import (
    KIND_CFPQ,
    KIND_DIST,
    KIND_PAIRS,
    KIND_REACH,
    QueryScheduler,
    QueryTicket,
)
from repro.service.result_cache import ResultCache
from repro.service.stats import ServiceStats, StatsSnapshot


class QueryService:
    """Concurrent RPQ/CFPQ query server over a shared context.

    Parameters
    ----------
    ctx:
        Library context to execute on.  ``None`` creates one from
        ``backend``/``hybrid`` (and then owns it: :meth:`close`
        finalizes it).
    backend / hybrid:
        Passed to :class:`~repro.core.context.Context` when ``ctx`` is
        None.  ``hybrid`` defaults to ``None`` — defer to the
        ``REPRO_HYBRID`` env var, so deployments (and CI) pick the
        dispatch policy without code changes; pass ``"auto"`` to force
        adaptive dispatch on.
    autotune:
        Calibrate the hybrid crossover on this host with a probe sweep
        at startup (cached per process; adds tens of milliseconds once).
    workers:
        Worker threads.  ``0`` is allowed (admission-only; useful for
        tests and manual draining).
    queue_limit / max_batch / plan_capacity:
        Admission-queue bound, batching window, and plan-cache size.
    result_capacity:
        Cross-request result cache size (entries); ``0`` disables it.
        Exact repeats of a (graph version, plan, source) triple are
        answered from memory without re-running the fixpoint.
    store_root:
        Directory of the persistent graph store (:mod:`repro.store`).
        Defaults to the ``REPRO_STORE`` environment variable; when set,
        :meth:`persist_graph` / :meth:`restore_graph` /
        :meth:`restore_all` round-trip named graphs to disk and edge
        mutations are WAL-logged.
    overlay:
        Incremental mutation path (default on): edge deltas land in a
        per-graph :class:`~repro.incr.overlay.DeltaOverlay` instead of
        rebuilding label matrices, queries merge them at plan time, and
        repeat queries after small adds-only deltas warm-start from
        their cached fixed points (:mod:`repro.incr`).  ``False``
        restores the eager rebuild-on-every-mutation behavior.
    """

    def __init__(
        self,
        ctx=None,
        *,
        backend: str = "cubool",
        hybrid: bool | str | None = None,
        autotune: bool = False,
        workers: int = 2,
        queue_limit: int = 64,
        max_batch: int = 8,
        plan_capacity: int = 128,
        result_capacity: int = 256,
        store_root=None,
        overlay: bool = True,
    ):
        if ctx is None:
            from repro.core.context import Context

            ctx = Context(
                backend=backend, hybrid=hybrid, hybrid_autotune=autotune or None
            )
            self._owns_ctx = True
        else:
            self._owns_ctx = False
        if store_root is None:
            from repro.store.metadata import store_root_from_env

            store_root = store_root_from_env()
        self.ctx = ctx
        self.graphs = GraphStore(ctx, store_root=store_root, overlay=overlay)
        self.plans = PlanCache(plan_capacity)
        self.results = (
            ResultCache(result_capacity) if result_capacity else None
        )
        self.service_stats = ServiceStats()
        self.scheduler = QueryScheduler(
            ctx,
            self.graphs,
            self.plans,
            self.service_stats,
            workers=workers,
            queue_limit=queue_limit,
            max_batch=max_batch,
            results=self.results,
        )
        self._router = None
        self._closed = False

    # -- replication (repro.cluster) ---------------------------------------

    def attach_router(self, router) -> None:
        """Attach a cluster :class:`~repro.cluster.ReadRouter`.

        The sync read surface (:meth:`reach` / :meth:`pairs` /
        :meth:`cfpq`) then routes each query by freshness requirement
        across the primary's followers, and :meth:`stats` grows a
        ``replication`` section with per-replica applied versions and
        lag.  The async ``submit_*`` surface always executes locally.
        Assigned once during primary start-up, before traffic.
        """
        self._router = router

    def detach_router(self):
        """Detach (and return) the attached router, if any."""
        router, self._router = self._router, None
        return router

    # -- graph management --------------------------------------------------

    def register_graph(
        self, name: str, graph: LabeledGraph, *, residency: str = "auto"
    ):
        """Register (or replace) a named graph; see :class:`GraphStore`."""
        if self.results is not None:
            self.results.invalidate_graph(name)
        return self.graphs.register(name, graph, residency=residency)

    def drop_graph(self, name: str) -> None:
        if self.results is not None:
            self.results.invalidate_graph(name)
        self.graphs.drop(name)

    # -- persistence (repro.store) ----------------------------------------

    def persist_graph(self, name: str) -> int:
        """Snapshot a registered graph to its on-disk volume."""
        return self.graphs.persist(name)

    def restore_graph(
        self, name: str, *, residency: str = "auto", mmap: bool = True
    ):
        """Warm-start a graph from disk (snapshot + WAL replay)."""
        if self.results is not None:
            self.results.invalidate_graph(name)
        return self.graphs.restore(name, residency=residency, mmap=mmap)

    def restore_all(
        self, *, residency: str = "auto", mmap: bool = True
    ) -> list[str]:
        """Warm-start every graph volume under the store root."""
        if self.results is not None:
            self.results.clear()
        return self.graphs.restore_all(residency=residency, mmap=mmap)

    def add_edges(self, name: str, label: str, edges) -> int:
        """Apply (and WAL-log) an edge addition; bumps the graph version,
        which invalidates cached results for the graph."""
        return self.graphs.add_edges(name, label, edges)

    def remove_edges(self, name: str, label: str, edges) -> int:
        """Apply (and WAL-log) an edge removal; bumps the graph version."""
        return self.graphs.remove_edges(name, label, edges)

    def apply_batch(self, name: str, deltas) -> int:
        """Apply a heterogeneous ``(op, label, edges)`` mutation batch
        under one lock acquisition; touched labels are rebuilt at most
        once (see :meth:`GraphStore.apply_batch`)."""
        return self.graphs.apply_batch(name, deltas)

    # -- async surface -----------------------------------------------------

    def submit_reach(
        self,
        graph: str,
        query,
        *,
        source: int,
        timeout: float | None = None,
    ) -> QueryTicket:
        """Single-source RPQ reachability (the batchable kind)."""
        handle = self.graphs.get(graph)  # validate early, pre-admission
        if not 0 <= int(source) < handle.n:
            raise InvalidArgumentError(
                f"source {source} outside [0, {handle.n})"
            )
        return self.scheduler.submit(
            QueryTicket(
                kind=KIND_REACH,
                graph=graph,
                query=query,
                source=int(source),
                timeout=timeout,
            )
        )

    def submit_pairs(
        self, graph: str, query, *, timeout: float | None = None
    ) -> QueryTicket:
        """All-pairs RPQ (closure of the product graph)."""
        self.graphs.get(graph)
        return self.scheduler.submit(
            QueryTicket(kind=KIND_PAIRS, graph=graph, query=query, timeout=timeout)
        )

    def submit_cfpq(
        self, graph: str, grammar, *, timeout: float | None = None
    ) -> QueryTicket:
        """All-pairs CFPQ on the tensor engine."""
        self.graphs.get(graph)
        return self.scheduler.submit(
            QueryTicket(kind=KIND_CFPQ, graph=graph, query=grammar, timeout=timeout)
        )

    def submit_distances(
        self,
        graph: str,
        *,
        source: int,
        weights: dict | None = None,
        semiring: str = "min-plus",
        timeout: float | None = None,
    ) -> QueryTicket:
        """Single-source shortest distances under a value semiring.

        ``weights`` optionally maps edge labels to weights (unlisted
        labels weigh 1); ``semiring`` names the algebra (only
        ``"min-plus"`` is evaluable today — the name is validated here
        so bad requests never reach the scheduler).  The answer is a
        set of ``(vertex, distance)`` pairs over reachable vertices.
        """
        from repro.core.semiring import get_semiring

        handle = self.graphs.get(graph)  # validate early, pre-admission
        if not 0 <= int(source) < handle.n:
            raise InvalidArgumentError(
                f"source {source} outside [0, {handle.n})"
            )
        s = get_semiring(semiring)
        if s.name != "min-plus":
            raise InvalidArgumentError(
                "distance queries require the min-plus semiring, "
                f"got {s.name!r}"
            )
        norm = (
            tuple(sorted((str(k), float(v)) for k, v in weights.items()))
            if weights
            else None
        )
        return self.scheduler.submit(
            QueryTicket(
                kind=KIND_DIST,
                graph=graph,
                query=(s.name, norm),
                source=int(source),
                timeout=timeout,
            )
        )

    # -- sync convenience --------------------------------------------------
    #
    # With a cluster router attached (attach_router), these route by
    # freshness: ``min_version=`` pins read-your-writes (pass the
    # version a mutation returned), the default tolerates the router's
    # bounded staleness, and ``route="primary"`` forces local execution.

    def reach(
        self,
        graph: str,
        query,
        *,
        source: int,
        timeout: float | None = None,
        min_version: int | None = None,
        route: str = "auto",
    ) -> set[int]:
        router = self._router
        if router is not None and route != "primary":
            return router.route_reach(
                graph, query,
                source=source, timeout=timeout, min_version=min_version,
            )
        return self.submit_reach(
            graph, query, source=source, timeout=timeout
        ).result()

    def pairs(
        self,
        graph: str,
        query,
        *,
        timeout: float | None = None,
        min_version: int | None = None,
        route: str = "auto",
    ) -> set[tuple[int, int]]:
        router = self._router
        if router is not None and route != "primary":
            return router.route_pairs(
                graph, query, timeout=timeout, min_version=min_version
            )
        return self.submit_pairs(graph, query, timeout=timeout).result()

    def cfpq(
        self,
        graph: str,
        grammar,
        *,
        timeout: float | None = None,
        min_version: int | None = None,
        route: str = "auto",
    ) -> set[tuple[int, int]]:
        router = self._router
        if router is not None and route != "primary":
            return router.route_cfpq(
                graph, grammar, timeout=timeout, min_version=min_version
            )
        return self.submit_cfpq(graph, grammar, timeout=timeout).result()

    def distances(
        self,
        graph: str,
        *,
        source: int,
        weights: dict | None = None,
        semiring: str = "min-plus",
        timeout: float | None = None,
    ) -> set[tuple[int, float]]:
        """Sync :meth:`submit_distances` (always evaluated locally —
        distance answers carry no replication path yet)."""
        return self.submit_distances(
            graph,
            source=source,
            weights=weights,
            semiring=semiring,
            timeout=timeout,
        ).result()

    # -- observability -----------------------------------------------------

    def stats(self) -> StatsSnapshot:
        router = self._router
        return self.service_stats.snapshot(
            plan_cache=self.plans,
            graph_store=self.graphs,
            result_cache=self.results,
            backend=self._backend_stats(),
            replication=router.stats() if router is not None else None,
        )

    def _backend_stats(self) -> dict:
        """Dispatch/kernel telemetry of the compute backend.

        Exposes the hybrid router's decisions (sparse vs bit routes,
        blocked vs Four-Russians mxm kernels) and the arena peak so
        operators can see whether the fused bit path is actually
        carrying the query load."""
        out: dict = {}
        device = getattr(self.ctx, "device", None)
        if device is not None:
            out["arena_peak_bytes"] = device.arena.peak_bytes
        backend = self.ctx.backend
        if hasattr(backend, "dispatch_counts"):
            out["dispatch"] = {
                op: dict(c) for op, c in backend.dispatch_counts.items()
            }
        if hasattr(backend, "kernel_counts"):
            out["kernels"] = {
                op: dict(c) for op, c in backend.kernel_counts.items()
            }
        if hasattr(backend, "kernel_times"):
            out["kernel_times_ms"] = {
                op: {k: round(s * 1e3, 3) for k, s in times.items()}
                for op, times in backend.kernel_times.items()
            }
        if hasattr(backend, "bit_workers"):
            out["bit_workers"] = backend.bit_workers
        return out

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Shut down workers, cancel queued queries, release graphs."""
        if self._closed:
            return
        self._closed = True
        self.scheduler.close()
        self.graphs.clear()
        if self._owns_ctx:
            self.ctx.finalize()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

"""Cross-request result cache: (graph version, plan, source) → answer.

A production query mix is heavily repetitive — the same templated
reachability questions against a slowly-changing graph.  The plan cache
already makes recompilation free; this cache makes *re-evaluation* free
for exact repeats: a small LRU keyed on

    (query kind, graph name, graph version, canonical plan key, source)

The graph ``version`` — bumped by :class:`~repro.service.graph_store.
GraphStore` on every applied edge delta (and stamped by the persistent
store's WAL) — is the invalidation mechanism: a mutation changes the
version, every subsequent lookup misses, and the stale entries age out
of the LRU.  Entries are only written when the graph version is
unchanged after evaluation, so a delta racing a fixpoint can never
publish a result under a version it does not represent.

Values are stored as frozensets and copied out on hit, so callers may
mutate what they receive without corrupting the cache.  Uncacheable
queries (prebuilt NFA/RSM plans have no canonical key) bypass the
cache entirely.

Entries optionally carry a :class:`~repro.incr.state.FixpointState`
next to the answer — the engine's resumable fixed point.  A query at
version ``v+k`` that misses exactly can still find its *ancestor* (same
key at the newest version ≤ v+k) via :meth:`ResultCache.get_ancestor`
and, when the delta since then was adds-only and small, warm-start the
fixpoint from it instead of recomputing (see :mod:`repro.incr`).
"""

from __future__ import annotations

from collections import OrderedDict

from repro.analysis.locktrace import make_lock
from repro.errors import InvalidArgumentError

_MISS = object()


class ResultCache:
    """Thread-safe LRU of query answers keyed on graph version."""

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise InvalidArgumentError("result cache capacity must be >= 1")
        self.capacity = capacity
        self._lock = make_lock("ResultCache._lock")
        self._entries: OrderedDict = OrderedDict()  # guarded-by: _lock
        self.hits = 0  # guarded-by: _lock
        self.misses = 0  # guarded-by: _lock
        self.evictions = 0  # guarded-by: _lock
        self.invalidations = 0  # guarded-by: _lock
        self.ancestor_hits = 0  # guarded-by: _lock

    @staticmethod
    def make_key(
        kind: str,
        graph: str,
        version: int,
        plan,
        source,
    ) -> tuple | None:
        """Cache key for one query, or None when uncacheable.

        ``plan.key`` is the plan cache's canonical source key; plans
        without one (prebuilt automata) cannot be identified across
        requests and never hit.  The trailing component tags the entry
        with the plan's semiring (``bool-or-and`` for the boolean
        reachability kinds), so a min-plus answer can never shadow a
        boolean one for the same source text.
        """
        plan_key = getattr(plan, "key", None)
        if plan_key is None:
            return None
        meta = getattr(plan, "meta", None) or {}
        semiring = meta.get("semiring", "bool-or-and")
        return (kind, graph, int(version), plan.kind, plan_key, source, semiring)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: tuple | None):
        """``(hit, value)``; the value is a fresh mutable copy."""
        if key is None:
            return False, None
        with self._lock:
            entry = self._entries.get(key, _MISS)
            if entry is _MISS:
                self.misses += 1
                return False, None
            self.hits += 1
            self._entries.move_to_end(key)
        return True, set(entry[0])

    def get_ancestor(self, key: tuple | None):
        """Newest same-query entry at a version ≤ the requested one.

        Scans for entries equal to ``key`` in every component except
        version (index 2) and returns ``(version, value, state)`` for
        the newest match, or None.  The value is the cached answer *as
        of that version* — the caller owns deciding whether the delta
        since then permits reuse (adds-only, small; see the scheduler's
        arbitration).  Does not count as a hit/miss and does not touch
        LRU order: lineage lookups must not keep stale entries alive.
        """
        if key is None:
            return None
        rest = key[:2] + key[3:]
        version = key[2]
        best = None
        with self._lock:
            for k, (value, state) in self._entries.items():
                if k[:2] + k[3:] != rest or k[2] > version:
                    continue
                if best is None or k[2] > best[0]:
                    best = (k[2], value, state)
            if best is not None:
                self.ancestor_hits += 1
        return best

    def put(self, key: tuple | None, value, state=None) -> None:
        """Store an answer, optionally with its resumable fixpoint
        ``state`` (a :class:`~repro.incr.state.FixpointState`)."""
        if key is None:
            return
        frozen = frozenset(value)
        with self._lock:
            self._entries[key] = (frozen, state)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def invalidate_graph(self, graph: str) -> int:
        """Drop every entry for ``graph`` (re-register / drop / restore)."""
        with self._lock:
            doomed = [k for k in self._entries if k[1] == graph]
            for k in doomed:
                del self._entries[k]
            self.invalidations += len(doomed)
        return len(doomed)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> dict:
        with self._lock:
            lookups = self.hits + self.misses
            return {
                "entries": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "ancestor_hits": self.ancestor_hits,
                "hit_ratio": self.hits / lookups if lookups else 0.0,
            }

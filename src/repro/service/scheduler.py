"""Query admission, scheduling, and multi-query batching.

The scheduler is the concurrency heart of the service tier:

* **bounded admission** — a fixed-capacity queue; when it is full,
  :meth:`QueryScheduler.submit` fails fast with
  :class:`~repro.errors.ServiceOverloadedError` instead of buffering
  unbounded work (load shedding at the front door);
* **worker pool** — N daemon threads drain the queue; every worker
  owns no state, so any worker can serve any request (the backends and
  the device arena are already thread-safe);
* **multi-query batching** — a worker dequeues up to ``max_batch``
  requests at once and coalesces same-graph RPQ reachability queries
  into a single :func:`~repro.rpq.engine.rpq_reach_batch` evaluation:
  one product build and one fixpoint answer the whole group;
* **deadlines + cooperative cancellation** — each request may carry a
  deadline; requests expire in the queue, are re-checked before and
  during evaluation (the fixpoint polls a cancel hook every
  iteration), and report :class:`~repro.errors.DeadlineExceededError`.

Callers interact through :class:`QueryTicket` — a future-like handle
with ``result(timeout)``, ``cancel()`` and per-stage timings.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from typing import TYPE_CHECKING

from repro.analysis.locktrace import kernel_boundary, make_lock
from repro.errors import (
    DeadlineExceededError,
    QueryCancelledError,
    QueryExecutionError,
    ServiceOverloadedError,
    SpblaError,
)

if TYPE_CHECKING:  # typed collaborators feed the static lock analysis
    from repro.service.graph_store import GraphStore
    from repro.service.plan_cache import PlanCache
    from repro.service.result_cache import ResultCache
    from repro.service.stats import ServiceStats

#: Batch group keys by query kind.
KIND_REACH = "rpq-reach"
KIND_PAIRS = "rpq-pairs"
KIND_CFPQ = "cfpq"
KIND_DIST = "dist"

_SHUTDOWN = object()

#: Process-wide query ids (itertools.count is atomic under the GIL).
_TICKET_IDS = itertools.count(1)


class QueryTicket:
    """Future-like handle for one submitted query.

    The scheduler fills in exactly one of ``result`` / ``error`` and
    sets the completion event; ``timings`` maps stage name → seconds
    (``queue_wait``, ``compile``, ``evaluate``, ``total``) and
    ``batch_size`` records how many queries shared the evaluation this
    ticket rode in (1 = not coalesced).
    """

    def __init__(
        self,
        *,
        kind: str,
        graph: str,
        query,
        source: int | None = None,
        timeout: float | None = None,
    ):
        self.id = next(_TICKET_IDS)
        self.kind = kind
        self.graph = graph
        self.query = query
        self.source = source
        self.submitted_at = time.monotonic()
        self.deadline = (
            self.submitted_at + timeout if timeout is not None else None
        )
        self.timings: dict[str, float] = {}
        self.batch_size = 0
        self._event = threading.Event()
        self._cancelled = threading.Event()
        self._result = None
        self._error: BaseException | None = None

    # -- caller side -------------------------------------------------------

    def cancel(self) -> None:
        """Request cooperative cancellation (idempotent, asynchronous)."""
        self._cancelled.set()

    @property
    def cancelled(self) -> bool:
        return self._cancelled.is_set()

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: float | None = None):
        """Block for the outcome; raises the query's error if it failed."""
        if not self._event.wait(timeout):
            raise TimeoutError("query still pending")
        if self._error is not None:
            raise self._error
        return self._result

    def exception(self, timeout: float | None = None) -> BaseException | None:
        if not self._event.wait(timeout):
            raise TimeoutError("query still pending")
        return self._error

    # -- scheduler side ----------------------------------------------------

    def _expired(self, now: float | None = None) -> bool:
        return self.deadline is not None and (now or time.monotonic()) > self.deadline

    def _finish(self, result=None, error: BaseException | None = None) -> None:
        if self._event.is_set():
            return
        self._result = result
        self._error = error
        self.timings["total"] = time.monotonic() - self.submitted_at
        self._event.set()


class QueryScheduler:
    """Bounded-queue worker pool with same-graph query coalescing.

    Evaluation is two-speed (see :mod:`repro.incr`): a cache miss first
    looks for an *ancestor* entry — the same query at an older graph
    version whose cached fixed point can be warm-started — and only
    falls back to the from-scratch fixpoint when the delta since that
    version was empty-handed (removals, too large, or unknowable).
    Counters ``incremental_evals`` / ``full_evals`` /
    ``incremental_declined`` report which path ran.
    """

    #: Warm-start is declined when the delta exceeds
    #: ``max(INCR_MIN_BUDGET, edges / INCR_BUDGET_FRACTION)`` — past
    #: that point replaying the delta approaches recomputation cost.
    INCR_MIN_BUDGET = 64
    INCR_BUDGET_FRACTION = 8

    def __init__(
        self,
        ctx,
        graphs: "GraphStore",
        plans: "PlanCache",
        stats: "ServiceStats",
        *,
        workers: int = 2,
        queue_limit: int = 64,
        max_batch: int = 8,
        results: "ResultCache | None" = None,
    ):
        self.ctx = ctx
        self.graphs = graphs
        self.plans = plans
        self.stats = stats
        #: Optional cross-request ResultCache; None disables it.
        self.results = results
        self.max_batch = max(1, int(max_batch))
        self._queue: queue.Queue = queue.Queue(maxsize=queue_limit)
        self._lock = make_lock("QueryScheduler._lock")
        self._closed = False  # guarded-by: _lock
        self._workers = [
            threading.Thread(
                target=self._worker_loop, name=f"repro-svc-{i}", daemon=True
            )
            for i in range(max(0, int(workers)))
        ]
        for t in self._workers:
            t.start()

    # -- admission ---------------------------------------------------------

    def submit(self, ticket: QueryTicket) -> QueryTicket:
        with self._lock:
            if self._closed:
                raise QueryCancelledError("service is shut down")
        try:
            self._queue.put_nowait(ticket)
        except queue.Full:
            self.stats.count("rejected")
            raise ServiceOverloadedError(
                f"admission queue full ({self._queue.maxsize} pending)"
            ) from None
        self.stats.count("submitted")
        self.stats.set_queue_depth(self._queue.qsize())
        return ticket

    # -- shutdown ----------------------------------------------------------

    def close(self, *, wait: bool = True) -> None:
        """Stop accepting work; cancel queued queries; join workers."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        # Flush still-queued tickets (in-flight evaluations finish).
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is not _SHUTDOWN:
                self.stats.count("cancelled")
                item._finish(error=QueryCancelledError("service shut down"))
        for _ in self._workers:
            self._queue.put(_SHUTDOWN)
        if wait:
            for t in self._workers:
                t.join()
        self.stats.set_queue_depth(0)

    # -- worker loop -------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is _SHUTDOWN:
                return
            batch = [item]
            while len(batch) < self.max_batch:
                try:
                    extra = self._queue.get_nowait()
                except queue.Empty:
                    break
                if extra is _SHUTDOWN:
                    # Keep the poison pill for the next worker.
                    self._queue.put(_SHUTDOWN)
                    break
                batch.append(extra)
            self.stats.set_queue_depth(self._queue.qsize())

            now = time.monotonic()
            for ticket in batch:
                ticket.timings["queue_wait"] = now - ticket.submitted_at
                self.stats.record_stage("queue_wait", ticket.timings["queue_wait"])

            for group in self._group(batch):
                try:
                    self._run_group(group)
                # Last-resort guard: a worker must survive anything
                # _run_group escalates (it wraps and re-raises unexpected
                # errors as QueryExecutionError; see docs/ANALYSIS.md).
                except BaseException as exc:  # reprolint: disable=R4
                    for ticket in group:
                        if not ticket.done():
                            self.stats.count("failed")
                            ticket._finish(error=exc)

    def _group(self, batch: list) -> list[list]:
        """Coalescible groups: reach queries by graph; others singleton."""
        reach: dict[str, list] = {}
        groups: list[list] = []
        for ticket in batch:
            if ticket.kind == KIND_REACH:
                reach.setdefault(ticket.graph, []).append(ticket)
            else:
                groups.append([ticket])
        groups.extend(reach.values())
        return groups

    def _prune(self, group: list) -> list:
        """Drop members already expired or cancelled; finish their tickets."""
        live = []
        now = time.monotonic()
        for ticket in group:
            if ticket.cancelled:
                self.stats.count("cancelled")
                ticket._finish(error=QueryCancelledError("cancelled by caller"))
            elif ticket._expired(now):
                self.stats.count("expired")
                ticket._finish(
                    error=DeadlineExceededError(
                        "deadline passed before evaluation started"
                    )
                )
            else:
                live.append(ticket)
        return live

    def _make_cancel_hook(self, group: list):
        """Cooperative cancellation polled between fixpoint iterations.

        Aborts the shared evaluation only when *no* member still wants
        the answer — individual members that cancel or expire mid-batch
        are settled after the evaluation without punishing the rest.
        """

        def check() -> None:
            now = time.monotonic()
            if all(t.cancelled or t._expired(now) for t in group):
                raise QueryCancelledError(
                    "all queries in the batch were cancelled or expired"
                )

        return check

    def _run_group(self, group: list) -> None:
        group = self._prune(group)
        if not group:
            return
        kind = group[0].kind

        # Resolve graph + plan per member (plan-cache hits are counted
        # here; a repeated query does zero recompilation).
        resolved = []
        for ticket in group:
            try:
                handle = self.graphs.get(ticket.graph)
                t0 = time.perf_counter()
                if kind == KIND_CFPQ:
                    plan_kind = "cfpq"
                elif kind == KIND_DIST:
                    plan_kind = "dist"
                else:
                    plan_kind = "rpq"
                plan = self.plans.get(plan_kind, ticket.query)
                dt = time.perf_counter() - t0
                ticket.timings["compile"] = dt
                self.stats.record_stage("compile", dt)
                resolved.append((ticket, handle, plan))
            except SpblaError as exc:
                # Expected failure modes (unknown graph, bad query, ...)
                # already speak the taxonomy: deliver as-is.
                self.stats.count("failed")
                ticket._finish(error=exc)
            except Exception as exc:
                # Outside the taxonomy = internal invariant broken.
                # Deliver with query context, then escalate to the
                # worker guard so the rest of the group fails loudly.
                self.stats.count("failed")
                wrapped = QueryExecutionError((ticket.id,), exc)
                ticket._finish(error=wrapped)
                raise wrapped from exc
        if not resolved:
            return

        # Cross-request result cache: exact repeats against an unchanged
        # graph version short-circuit here — no fixpoint, no batch slot.
        keys: list = [None] * len(resolved)
        if self.results is not None:
            remaining = []
            for ticket, handle, plan in resolved:
                key = self.results.make_key(
                    kind,
                    ticket.graph,
                    handle.current_version(),
                    plan,
                    ticket.source,
                )
                hit, value = self.results.get(key)
                if hit:
                    ticket.timings["evaluate"] = 0.0
                    ticket.batch_size = 1
                    handle.record_served(1)
                    self.stats.count("completed")
                    self.stats.count("result_cache_hits")
                    ticket._finish(result=value)
                    self.stats.record_stage(
                        "total", time.monotonic() - ticket.submitted_at
                    )
                else:
                    remaining.append((ticket, handle, plan, key))
            if not remaining:
                return
            resolved = [(t, h, p) for t, h, p, _ in remaining]
            keys = [k for _, _, _, k in remaining]

        tickets = [t for t, _, _ in resolved]
        handle = resolved[0][1]
        cancel = self._make_cancel_hook(tickets)
        # Under REPRO_CHECK_LOCKS: a traced lock held past this point
        # would serialize the whole pool on the evaluation.
        kernel_boundary("QueryScheduler.evaluate")
        t0 = time.perf_counter()
        try:
            if kind == KIND_REACH:
                results, states = self._eval_reach(resolved, keys, cancel)
            elif kind == KIND_PAIRS:
                result, state = self._eval_pairs(handle, resolved[0][2], keys[0])
                results, states = [result], [state]
            elif kind == KIND_CFPQ:
                result, state = self._eval_cfpq(handle, resolved[0][2], keys[0])
                results, states = [result], [state]
            elif kind == KIND_DIST:
                result, state = self._eval_distances(
                    handle, resolved[0][2], resolved[0][0].source
                )
                results, states = [result], [state]
            else:  # pragma: no cover - submit() validates kinds
                raise QueryCancelledError(f"unknown query kind {kind!r}")
        except QueryCancelledError as exc:
            for ticket in tickets:
                if ticket._expired():
                    self.stats.count("expired")
                    ticket._finish(error=DeadlineExceededError(str(exc)))
                else:
                    self.stats.count("cancelled")
                    ticket._finish(error=exc)
            return
        except SpblaError as exc:
            for ticket in tickets:
                self.stats.count("failed")
                ticket._finish(error=exc)
            return
        except Exception as exc:
            # See the resolve loop: wrap with every affected query id,
            # deliver, then escalate to the worker guard.
            wrapped = QueryExecutionError([t.id for t in tickets], exc)
            for ticket in tickets:
                self.stats.count("failed")
                ticket._finish(error=wrapped)
            raise wrapped from exc
        eval_time = time.perf_counter() - t0

        self.stats.record_batch(len(tickets))
        handle.record_served(len(tickets))
        now = time.monotonic()
        for (ticket, result), key, state in zip(zip(tickets, results), keys, states):
            ticket.timings["evaluate"] = eval_time
            self.stats.record_stage("evaluate", eval_time)
            ticket.batch_size = len(tickets)
            if ticket.cancelled:
                self.stats.count("cancelled")
                ticket._finish(error=QueryCancelledError("cancelled by caller"))
            elif ticket._expired(now):
                self.stats.count("expired")
                ticket._finish(
                    error=DeadlineExceededError("deadline passed during evaluation")
                )
            else:
                self.stats.count("completed")
                ticket._finish(result=result)
                self.stats.record_stage(
                    "total", now - ticket.submitted_at
                )
                # Publish only if no delta raced the evaluation: the key
                # embeds the pre-eval version (index 2); a mismatch means
                # the answer may reflect newer matrices than it names.
                if (
                    self.results is not None
                    and key is not None
                    and handle.current_version() == key[2]
                ):
                    self.results.put(key, result, state=state)

    # -- incremental arbitration ------------------------------------------

    def _warm_start(self, handle, key):
        """``(state, adds)`` when an incremental restart is worthwhile.

        Requires an ancestor cache entry carrying a fixpoint state AND
        an overlay journal proving the delta since that version was
        adds-only and small.  Removals, oversized deltas, and unknowable
        spans (overlay disabled, journal pruned) all return None — the
        from-scratch path is the only safe answer there.
        """
        if self.results is None or key is None:
            return None
        ancestor = self.results.get_ancestor(key)
        if ancestor is None:
            return None
        version, _value, state = ancestor
        if state is None:
            return None
        summary = handle.delta_since(version)
        if summary is None or not summary.adds_only or summary.count == 0:
            return None
        budget = max(
            self.INCR_MIN_BUDGET,
            handle.graph.num_edges // self.INCR_BUDGET_FRACTION,
        )
        if summary.count > budget:
            self.stats.count("incremental_declined")
            return None
        return state, summary.adds

    def _wants_state(self, key) -> bool:
        """Capture fixpoint state only when it can be cached at all."""
        return self.results is not None and key is not None

    # -- evaluation backends ----------------------------------------------

    def _eval_reach(self, resolved: list, keys: list, cancel):
        from repro.rpq.engine import rpq_reach_batch

        # All members share one graph (grouping key); plans may differ —
        # the batch evaluator deduplicates identical plan objects.
        handle = resolved[0][1]
        adjacency = handle.query_matrices()
        if len(resolved) == 1:
            # Singleton groups run the frontier engine directly: same
            # answer as a batch of one, but it can warm-start from (and
            # snapshot) the final frontier.
            from repro.incr.engine import rpq_reach_incremental

            ticket, handle, plan = resolved[0]
            warm = self._warm_start(handle, keys[0])
            targets, state, used, _ = rpq_reach_incremental(
                plan.nfa,
                handle.n,
                ticket.source,
                self.ctx,
                adjacency,
                warm[0] if warm is not None else None,
                cancel,
            )
            self.stats.count("incremental_evals" if used else "full_evals")
            if not self._wants_state(keys[0]):
                state = None
            return [targets], [state]
        # Coalesced batches share one frontier matrix; its final state
        # is not attributable to a single cache key, so no state rides.
        self.stats.count("full_evals", len(resolved))
        results = rpq_reach_batch(
            handle.graph,
            [plan.nfa for _, _, plan in resolved],
            [ticket.source for ticket, _, _ in resolved],
            self.ctx,
            adjacency=adjacency,
            cancel=cancel,
        )
        return results, [None] * len(resolved)

    def _eval_pairs(self, handle, plan, key):
        from repro.rpq.engine import rpq_index

        warm = self._warm_start(handle, key)
        if warm is not None:
            from repro.incr.engine import rpq_pairs_incremental

            out = rpq_pairs_incremental(
                plan.nfa, handle.n, self.ctx, warm[0], warm[1]
            )
            if out is not None:
                self.stats.count("incremental_evals")
                return out
        self.stats.count("full_evals")
        from repro.incr.engine import pairs_state_from_index

        index = rpq_index(
            handle.graph, plan.nfa, self.ctx, adjacency=handle.query_matrices()
        )
        try:
            state = (
                pairs_state_from_index(index) if self._wants_state(key) else None
            )
            return index.pairs(), state
        finally:
            index.free()

    def _eval_distances(self, handle, plan, source):
        """Single-source min-plus distances as a reachability-style set.

        No warm start: distance fixpoints run on the value backend and
        have no boolean FixpointState lineage to resume from — results
        ride the ordinary result cache instead (tagged by semiring).
        """
        from repro.algorithms.shortest_paths import (
            single_source_shortest_paths,
            weight_matrix,
        )

        self.stats.count("full_evals")
        weights = dict(plan.meta.get("weights") or ())
        w = weight_matrix(handle.graph, weights or None)
        dist = single_source_shortest_paths(w, source)
        result = {
            (int(v), float(d)) for v, d in enumerate(dist) if d < float("inf")
        }
        return result, None

    def _eval_cfpq(self, handle, plan, key):
        from repro.cfpq.tensor_algorithm import tensor_cfpq

        warm = self._warm_start(handle, key)
        if warm is not None:
            from repro.incr.engine import tensor_cfpq_incremental

            out = tensor_cfpq_incremental(
                handle.graph, plan.rsm, self.ctx, warm[0], warm[1]
            )
            if out is not None:
                self.stats.count("incremental_evals")
                return out
        self.stats.count("full_evals")
        from repro.incr.engine import tensor_state_from_index

        index = tensor_cfpq(handle.graph, plan.rsm, self.ctx)
        try:
            state = (
                tensor_state_from_index(index) if self._wants_state(key) else None
            )
            return index.pairs(), state
        finally:
            index.free()

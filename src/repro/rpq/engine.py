"""Kronecker-product RPQ evaluation.

Given an edge-labeled graph ``G`` (n vertices) and a regular expression
compiled to an NFA ``R`` (k states), the product graph

    ``M = Σ_{label} R_label ⊗ G_label``           (kn × kn, boolean)

has an edge ``(s, v) → (t, w)`` exactly when the automaton can move
``s → t`` while the graph moves ``v → w`` on the same label.  A word of
the query language labels a path ``u → v`` iff some final-state block of
the transitive closure ``M⁺`` contains ``(start, u) → (final, v)``.

Index = the closure plus its block decomposition; the sub-matrix
extraction operation of the library carves out the per-(start, final)
blocks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.algorithms.closure import transitive_closure
from repro.automata.glushkov import glushkov_nfa
from repro.automata.nfa import NFA
from repro.automata.regex_ast import Regex
from repro.automata.regex_parse import parse_regex
from repro.errors import InvalidArgumentError
from repro.graph import LabeledGraph


@dataclass
class RpqIndex:
    """The evaluated query: closure of the product graph + metadata."""

    nfa: NFA
    n: int                      # graph vertex count
    closure: object             # Matrix of shape (k*n, k*n), M⁺
    graph_matrices: dict        # label -> host (rowptr, cols) CSR arrays
    ctx: object
    stats: dict = field(default_factory=dict)

    @property
    def k(self) -> int:
        return self.nfa.n

    # -- result readout -----------------------------------------------------

    def pairs(self) -> set[tuple[int, int]]:
        """All (u, v) with a query-matching path u → v.

        Nonempty-word matches come from closure blocks; if the query
        language contains ε, every vertex matches itself as well.
        """
        out: set[tuple[int, int]] = set()
        n = self.n
        for s in self.nfa.starts:
            for f in self.nfa.finals:
                block = self.closure.extract_submatrix(s * n, f * n, n, n)
                try:
                    rows, cols = block.to_arrays()
                finally:
                    block.free()
                out.update(zip(rows.tolist(), cols.tolist()))
        if self.matches_epsilon:
            out.update((v, v) for v in range(n))
        return out

    @property
    def matches_epsilon(self) -> bool:
        return bool(self.nfa.starts & self.nfa.finals)

    def reachable_from(self, source: int) -> set[int]:
        """Targets v such that (source, v) is in the answer."""
        return {v for u, v in self.pairs() if u == source}

    def free(self) -> None:
        self.closure.free()


def _compile(query, automaton: str = "glushkov") -> NFA:
    if isinstance(query, NFA):
        return query
    if isinstance(query, str):
        query = parse_regex(query)
    if not isinstance(query, Regex):
        raise InvalidArgumentError(f"unsupported query type {type(query).__name__}")
    if automaton == "glushkov":
        return glushkov_nfa(query)
    if automaton == "thompson":
        from repro.automata.nfa import thompson_nfa

        return thompson_nfa(query)
    if automaton == "mindfa":
        from repro.automata.dfa import determinize, minimize

        return minimize(determinize(glushkov_nfa(query))).to_nfa()
    raise InvalidArgumentError(
        f"unknown automaton construction {automaton!r} "
        "(glushkov / thompson / mindfa)"
    )


def _product_matrix(nfa: NFA, g_mats: dict, n: int, ctx, labels):
    """``Σ_label R_label ⊗ G_label`` for the given (borrowed) graph
    matrices; frees the automaton matrices it creates."""
    r_mats = nfa.transition_matrices(ctx, labels=labels)
    product = ctx.matrix_empty((nfa.n * n, nfa.n * n))
    try:
        with ctx.backend.fixpoint():
            for label in labels:
                # Fused product <- product ∨ (R ⊗ G): no per-label
                # Kronecker temporary on the bit path.
                merged = r_mats[label].kron(g_mats[label], accumulate=product)
                product.free()
                product = merged
    finally:
        for mat in r_mats.values():
            mat.free()
    return product


def rpq_index(
    graph: LabeledGraph,
    query,
    ctx,
    *,
    closure_method: str = "squaring",
    automaton: str = "glushkov",
    adjacency: dict | None = None,
) -> RpqIndex:
    """Build the RPQ reachability index (the timed operation of E3/E4).

    ``query`` may be a regex string, AST, or a prebuilt NFA.
    ``automaton`` selects the query-compilation strategy: Glushkov's
    position automaton (default — what the provenance-aware RPQ
    literature uses), Thompson + ε-elimination, or the minimized DFA
    (``mindfa``: smallest product graph, at the cost of determinization
    up front — compared in the ablation benchmark).

    ``adjacency`` optionally supplies pre-lowered ``label → Matrix``
    adjacency matrices on ``ctx`` (the service tier's GraphStore keeps
    graphs resident); borrowed matrices are *not* freed.
    """
    nfa = _compile(query, automaton)
    n = graph.n
    if n == 0:
        raise InvalidArgumentError("empty graph")
    t0 = time.perf_counter()

    shared = sorted(set(nfa.labels) & set(graph.labels))
    if adjacency is None:
        g_mats = graph.adjacency_matrices(ctx, labels=shared)
        borrowed = False
    else:
        g_mats = {label: adjacency[label] for label in shared}
        borrowed = True

    product = _product_matrix(nfa, g_mats, n, ctx, shared)
    t_product = time.perf_counter()

    closure = transitive_closure(product, method=closure_method)
    product.free()
    t_closure = time.perf_counter()

    host_graph = {}
    for label in shared:
        rows, cols = g_mats[label].to_arrays()
        host_graph[label] = (rows, cols)
        if not borrowed:
            g_mats[label].free()

    return RpqIndex(
        nfa=nfa,
        n=n,
        closure=closure,
        graph_matrices=host_graph,
        ctx=ctx,
        stats={
            "product_time_s": t_product - t0,
            "closure_time_s": t_closure - t_product,
            "total_time_s": t_closure - t0,
            "product_nnz": closure.nnz,
            "automaton_states": nfa.n,
        },
    )


def rpq_pairs(graph: LabeledGraph, query, ctx) -> set[tuple[int, int]]:
    """Convenience: evaluate and return the reachable pairs."""
    index = rpq_index(graph, query, ctx)
    try:
        return index.pairs()
    finally:
        index.free()


def rpq_reach_batch(
    graph: LabeledGraph,
    queries: list,
    sources: list[int],
    ctx,
    *,
    automaton: str = "glushkov",
    adjacency: dict | None = None,
    cancel=None,
) -> list[set[int]]:
    """Evaluate many single-source RPQ queries in **one** fixpoint.

    The batched evaluation behind the query service's multi-query
    coalescing: query ``i`` asks for all ``v`` reachable from
    ``sources[i]`` along a path matching ``queries[i]``.  Instead of
    ``len(queries)`` separate product-closure runs, the (deduplicated)
    automata are stacked block-diagonally into one union automaton
    ``R``, the product ``M = Σ R_label ⊗ G_label`` is built once, and
    all source vectors are stacked into a single boolean frontier
    matrix ``F`` (one row per query, seeded at its automaton block's
    start states).  One BFS-style fixpoint

        ``F ← F ∨ F·M``

    then answers every query simultaneously: automaton blocks are
    disconnected in ``M``, so row ``i`` only ever walks its own block,
    and the result is identical to evaluating the queries one at a
    time — while the per-iteration kernel and dispatch overhead is paid
    once for the whole batch instead of once per query.

    ``queries`` entries may be regex strings, ASTs, or prebuilt NFAs;
    identical objects (e.g. a plan-cache hit handed out twice) share
    one automaton block.  ``adjacency`` borrows pre-lowered graph
    matrices as in :func:`rpq_index`.  ``cancel``, if given, is invoked
    between fixpoint iterations and may raise to abort cooperatively.

    Returns one target set per query, in input order.
    """
    if len(queries) != len(sources):
        raise InvalidArgumentError(
            f"{len(queries)} queries but {len(sources)} sources"
        )
    n = graph.n
    if n == 0:
        raise InvalidArgumentError("empty graph")
    for src in sources:
        if not 0 <= src < n:
            raise InvalidArgumentError(f"source {src} outside [0, {n})")
    if not queries:
        return []

    # Deduplicate compiled automata: repeated plans share one block.
    nfas = [_compile(q, automaton) for q in queries]
    unique: dict[int, int] = {}          # id(nfa) -> block index
    blocks: list[NFA] = []
    block_of: list[int] = []
    for nfa in nfas:
        idx = unique.get(id(nfa))
        if idx is None:
            idx = len(blocks)
            unique[id(nfa)] = idx
            blocks.append(nfa)
        block_of.append(idx)

    offsets = []
    total_states = 0
    for nfa in blocks:
        offsets.append(total_states)
        total_states += nfa.n
    merged_transitions: dict[str, list] = {}
    for nfa, offset in zip(blocks, offsets):
        shifted = nfa.renumbered(offset, total_states)
        for label, pairs in shifted.transitions.items():
            merged_transitions.setdefault(label, []).extend(pairs)
    union = NFA(
        total_states,
        frozenset(
            offset + s for nfa, offset in zip(blocks, offsets) for s in nfa.starts
        ),
        frozenset(
            offset + f for nfa, offset in zip(blocks, offsets) for f in nfa.finals
        ),
        merged_transitions,
    )

    shared = sorted(set(union.labels) & set(graph.labels))
    if adjacency is None:
        g_mats = graph.adjacency_matrices(ctx, labels=shared)
        borrowed = False
    else:
        g_mats = {label: adjacency[label] for label in shared}
        borrowed = True

    product = None
    frontier = None
    try:
        product = _product_matrix(union, g_mats, n, ctx, shared)

        rows: list[int] = []
        cols: list[int] = []
        for i, (src, b) in enumerate(zip(sources, block_of)):
            offset = offsets[b]
            for s0 in blocks[b].starts:
                rows.append(i)
                cols.append((offset + s0) * n + src)
        frontier = ctx.matrix_from_lists(
            (len(queries), total_states * n), rows, cols
        )

        with ctx.backend.fixpoint():
            while True:
                if cancel is not None:
                    cancel()
                step = frontier.mxm(product, accumulate=frontier)
                if step.nnz == frontier.nnz:
                    step.free()
                    break
                frontier.free()
                frontier = step

        out: list[set[int]] = [set() for _ in queries]
        f_rows, f_cols = frontier.to_arrays()
        final_sets = [
            frozenset(offsets[b] + f for f in blocks[b].finals)
            for b in range(len(blocks))
        ]
        for i, c in zip(f_rows.tolist(), f_cols.tolist()):
            if c // n in final_sets[block_of[i]]:
                out[i].add(c % n)
        return out
    finally:
        if product is not None:
            product.free()
        if frontier is not None:
            frontier.free()
        if not borrowed:
            for mat in g_mats.values():
                mat.free()


def rpq_reach(
    graph: LabeledGraph,
    query,
    source: int,
    ctx,
    *,
    automaton: str = "glushkov",
    adjacency: dict | None = None,
) -> set[int]:
    """Single-source RPQ reachability (a batch of one)."""
    return rpq_reach_batch(
        graph, [query], [source], ctx, automaton=automaton, adjacency=adjacency
    )[0]

"""Kronecker-product RPQ evaluation.

Given an edge-labeled graph ``G`` (n vertices) and a regular expression
compiled to an NFA ``R`` (k states), the product graph

    ``M = Σ_{label} R_label ⊗ G_label``           (kn × kn, boolean)

has an edge ``(s, v) → (t, w)`` exactly when the automaton can move
``s → t`` while the graph moves ``v → w`` on the same label.  A word of
the query language labels a path ``u → v`` iff some final-state block of
the transitive closure ``M⁺`` contains ``(start, u) → (final, v)``.

Index = the closure plus its block decomposition; the sub-matrix
extraction operation of the library carves out the per-(start, final)
blocks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.algorithms.closure import transitive_closure
from repro.automata.glushkov import glushkov_nfa
from repro.automata.nfa import NFA
from repro.automata.regex_ast import Regex
from repro.automata.regex_parse import parse_regex
from repro.errors import InvalidArgumentError
from repro.graph import LabeledGraph


@dataclass
class RpqIndex:
    """The evaluated query: closure of the product graph + metadata."""

    nfa: NFA
    n: int                      # graph vertex count
    closure: object             # Matrix of shape (k*n, k*n), M⁺
    graph_matrices: dict        # label -> host (rowptr, cols) CSR arrays
    ctx: object
    stats: dict = field(default_factory=dict)

    @property
    def k(self) -> int:
        return self.nfa.n

    # -- result readout -----------------------------------------------------

    def pairs(self) -> set[tuple[int, int]]:
        """All (u, v) with a query-matching path u → v.

        Nonempty-word matches come from closure blocks; if the query
        language contains ε, every vertex matches itself as well.
        """
        out: set[tuple[int, int]] = set()
        n = self.n
        for s in self.nfa.starts:
            for f in self.nfa.finals:
                block = self.closure.extract_submatrix(s * n, f * n, n, n)
                try:
                    rows, cols = block.to_arrays()
                finally:
                    block.free()
                out.update(zip(rows.tolist(), cols.tolist()))
        if self.matches_epsilon:
            out.update((v, v) for v in range(n))
        return out

    @property
    def matches_epsilon(self) -> bool:
        return bool(self.nfa.starts & self.nfa.finals)

    def reachable_from(self, source: int) -> set[int]:
        """Targets v such that (source, v) is in the answer."""
        return {v for u, v in self.pairs() if u == source}

    def free(self) -> None:
        self.closure.free()


def _compile(query, automaton: str = "glushkov") -> NFA:
    if isinstance(query, NFA):
        return query
    if isinstance(query, str):
        query = parse_regex(query)
    if not isinstance(query, Regex):
        raise InvalidArgumentError(f"unsupported query type {type(query).__name__}")
    if automaton == "glushkov":
        return glushkov_nfa(query)
    if automaton == "thompson":
        from repro.automata.nfa import thompson_nfa

        return thompson_nfa(query)
    if automaton == "mindfa":
        from repro.automata.dfa import determinize, minimize

        return minimize(determinize(glushkov_nfa(query))).to_nfa()
    raise InvalidArgumentError(
        f"unknown automaton construction {automaton!r} "
        "(glushkov / thompson / mindfa)"
    )


def rpq_index(
    graph: LabeledGraph,
    query,
    ctx,
    *,
    closure_method: str = "squaring",
    automaton: str = "glushkov",
) -> RpqIndex:
    """Build the RPQ reachability index (the timed operation of E3/E4).

    ``query`` may be a regex string, AST, or a prebuilt NFA.
    ``automaton`` selects the query-compilation strategy: Glushkov's
    position automaton (default — what the provenance-aware RPQ
    literature uses), Thompson + ε-elimination, or the minimized DFA
    (``mindfa``: smallest product graph, at the cost of determinization
    up front — compared in the ablation benchmark).
    """
    nfa = _compile(query, automaton)
    n = graph.n
    if n == 0:
        raise InvalidArgumentError("empty graph")
    t0 = time.perf_counter()

    shared = sorted(set(nfa.labels) & set(graph.labels))
    r_mats = nfa.transition_matrices(ctx, labels=shared)
    g_mats = graph.adjacency_matrices(ctx, labels=shared)

    product = ctx.matrix_empty((nfa.n * n, nfa.n * n))
    with ctx.backend.fixpoint():
        for label in shared:
            term = r_mats[label].kron(g_mats[label])
            merged = product.ewise_add(term)
            term.free()
            product.free()
            product = merged
    t_product = time.perf_counter()

    closure = transitive_closure(product, method=closure_method)
    product.free()
    t_closure = time.perf_counter()

    host_graph = {}
    for label in shared:
        rows, cols = g_mats[label].to_arrays()
        host_graph[label] = (rows, cols)
        g_mats[label].free()
        r_mats[label].free()

    return RpqIndex(
        nfa=nfa,
        n=n,
        closure=closure,
        graph_matrices=host_graph,
        ctx=ctx,
        stats={
            "product_time_s": t_product - t0,
            "closure_time_s": t_closure - t_product,
            "total_time_s": t_closure - t0,
            "product_nnz": closure.nnz,
            "automaton_states": nfa.n,
        },
    )


def rpq_pairs(graph: LabeledGraph, query, ctx) -> set[tuple[int, int]]:
    """Convenience: evaluate and return the reachable pairs."""
    index = rpq_index(graph, query, ctx)
    try:
        return index.pairs()
    finally:
        index.free()

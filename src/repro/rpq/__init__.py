"""Regular path querying (S12) via the Kronecker product.

The evaluation's RPQ workload: build the query automaton, form the
product graph ``M = Σ_label R_label ⊗ G_label``, transitively close it,
and read reachable (source, target) vertex pairs out of the
(start-state, final-state) blocks — "index creation" in Figures 2–3 of
the paper.  Path extraction walks the product graph guided by the
closure.
"""

from repro.rpq.engine import (
    RpqIndex,
    rpq_index,
    rpq_pairs,
    rpq_reach,
    rpq_reach_batch,
)
from repro.rpq.paths import extract_paths

__all__ = [
    "RpqIndex",
    "extract_paths",
    "rpq_index",
    "rpq_pairs",
    "rpq_reach",
    "rpq_reach_batch",
]

"""Path extraction from an RPQ index (all-paths semantics).

The closure answers *whether* ``u → v`` matches; extraction recovers
*which* paths do.  The walk runs on the product graph: from
``(start, u)``, follow product edges ``(s, v) --label--> (t, w)``
(automaton transition × graph edge), pruned by the closure — a prefix is
extended only if the closure certifies that some final-state block of
``v``'s column is still reachable.  Every maximal walk reaching
``(final, v)`` yields one path; ``max_paths`` / ``max_length`` bound the
enumeration (the paper limits extraction to paths of ≤ 20 edges and 10
paths per pair in its experiments).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import InvalidArgumentError
from repro.rpq.engine import RpqIndex


@dataclass(frozen=True)
class PathResult:
    """One matching path: vertices visited and edge labels taken."""

    vertices: tuple[int, ...]
    labels: tuple[str, ...]

    def __len__(self) -> int:
        return len(self.labels)


def extract_paths(
    index: RpqIndex,
    source: int,
    target: int,
    *,
    max_paths: int = 10,
    max_length: int = 20,
) -> list[PathResult]:
    """Enumerate matching paths ``source → target`` from the index."""
    n = index.n
    if not (0 <= source < n and 0 <= target < n):
        raise InvalidArgumentError("source/target outside vertex range")

    # Host-side adjacency: label -> {v: sorted targets}, from index copies.
    graph_adj: dict[str, dict[int, np.ndarray]] = {}
    for label, (rows, cols) in index.graph_matrices.items():
        by_row: dict[int, list[int]] = {}
        for r, c in zip(rows.tolist(), cols.tolist()):
            by_row.setdefault(r, []).append(c)
        graph_adj[label] = {r: np.asarray(cs) for r, cs in by_row.items()}

    # Automaton adjacency: state -> [(label, next_state)].
    auto_adj: dict[int, list[tuple[str, int]]] = {}
    for label, pairs in index.nfa.transitions.items():
        if label not in graph_adj:
            continue
        for s, t in pairs:
            auto_adj.setdefault(s, []).append((label, t))

    finals = index.nfa.finals
    closure = index.closure
    results: list[PathResult] = []

    def can_finish(s: int, v: int) -> bool:
        """Is some (final, target) reachable from (s, v) (or already there)."""
        if v == target and s in finals:
            return True
        src = s * n + v
        return any(closure.get(src, f * n + target) for f in finals)

    def dfs(s: int, v: int, vertices: list[int], labels: list[str]) -> None:
        if len(results) >= max_paths:
            return
        if v == target and s in finals and labels:
            results.append(PathResult(tuple(vertices), tuple(labels)))
            if len(results) >= max_paths:
                return
        if len(labels) >= max_length:
            return
        for label, t in auto_adj.get(s, ()):
            targets = graph_adj[label].get(v)
            if targets is None:
                continue
            for w in targets.tolist():
                if can_finish(t, w):
                    vertices.append(w)
                    labels.append(label)
                    dfs(t, w, vertices, labels)
                    vertices.pop()
                    labels.pop()
                    if len(results) >= max_paths:
                        return

    for s0 in index.nfa.starts:
        if len(results) >= max_paths:
            break
        if can_finish(s0, source) or (source == target and s0 in finals):
            dfs(s0, source, [source], [])

    # ε-match: the empty path when source == target and ε ∈ L(query).
    if (
        source == target
        and index.matches_epsilon
        and len(results) < max_paths
    ):
        results.append(PathResult((source,), ()))
    return results

"""Labeled edge-list I/O.

The CFPQ_Data convention: one edge per line, ``<source> <label> <target>``
with whitespace separation.  Vertices may be arbitrary tokens; they are
densely renumbered in first-appearance order and the mapping is
returned.
"""

from __future__ import annotations

from pathlib import Path

from repro.errors import InvalidArgumentError
from repro.graph import LabeledGraph


def _read_text_source(source, what: str) -> str:
    """Resolve a path / content-string / file-object source to text.

    A plain string is treated as a filesystem path only when it names an
    existing file; otherwise it is taken as the content itself (so
    single-line and empty documents round-trip).
    """
    from pathlib import Path as _Path
    import os as _os

    if isinstance(source, _Path):
        return source.read_text()
    if isinstance(source, str):
        if "\n" not in source and source and _os.path.isfile(source):
            return _Path(source).read_text()
        return source
    if hasattr(source, "read"):
        return source.read()
    raise InvalidArgumentError(f"unsupported {what} source")



def read_edge_list(source) -> tuple[LabeledGraph, dict]:
    """Parse an edge list into ``(graph, vertex_name -> id mapping)``.

    ``source`` may be a path, the file contents, or a text file object.
    Lines starting with ``#`` and blank lines are skipped.
    """
    text = _read_text_source(source, "edge list")

    ids: dict = {}
    triples: list[tuple[int, str, int]] = []

    def vid(token: str) -> int:
        if token not in ids:
            ids[token] = len(ids)
        return ids[token]

    for lineno, line in enumerate(text.splitlines(), 1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        parts = stripped.split()
        if len(parts) != 3:
            raise InvalidArgumentError(
                f"line {lineno}: expected '<src> <label> <dst>', got {stripped!r}"
            )
        u, label, v = parts
        triples.append((vid(u), label, vid(v)))

    return LabeledGraph.from_triples(triples, n=len(ids)), ids


def write_edge_list(target, graph: LabeledGraph, names: dict | None = None) -> None:
    """Write a graph as a labeled edge list.

    ``names`` optionally maps vertex id → display token (defaults to the
    numeric id).
    """
    lookup = (
        {v: k for k, v in names.items()} if names and all(
            isinstance(v, int) for v in names.values()
        ) else None
    )

    def render(v: int) -> str:
        if lookup is not None and v in lookup:
            return str(lookup[v])
        return str(v)

    lines = [f"{render(u)} {label} {render(v)}" for u, label, v in graph.triples()]
    text = "\n".join(lines) + ("\n" if lines else "")
    if isinstance(target, (str, Path)):
        Path(target).write_text(text)
    elif hasattr(target, "write"):
        target.write(text)
    else:
        raise InvalidArgumentError("unsupported edge list target")

"""I/O (S8): Matrix Market and labeled edge-list formats."""

from repro.io.matrix_market import read_matrix_market, write_matrix_market
from repro.io.edge_list import read_edge_list, write_edge_list

__all__ = [
    "read_edge_list",
    "read_matrix_market",
    "write_edge_list",
    "write_matrix_market",
]

"""Recursive state machines (RSM).

An RSM is a collection of *boxes*, one per nonterminal: the box for
``A`` is a finite automaton over terminals **and nonterminals**
accepting exactly the right-hand-side language of ``A``.  The tensor
CFPQ algorithm takes the RSM directly — no normal form — which is the
improvement over the matrix algorithm that the paper's evaluation
quantifies.

Boxes are built with the Glushkov construction from a regex per
nonterminal, so grammars with regex right-hand sides (the paper's MA
query ``V → ((S?) ~a)* (S?) (a (S?))*``) lower without rewriting.
States of all boxes share a single global numbering; the machine then
lowers to one boolean matrix per symbol, ready for the Kronecker
product with the graph.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.automata.glushkov import glushkov_nfa
from repro.automata.nfa import NFA
from repro.automata.regex_ast import Regex, Symbol, concat_all, union_all
from repro.automata.regex_parse import parse_regex
from repro.errors import InvalidArgumentError
from repro.grammar.cfg import CFG


@dataclass(frozen=True)
class Box:
    """One nonterminal's automaton placed in the global numbering."""

    nonterminal: str
    start: int                      # global start state
    finals: frozenset[int]          # global final states
    states: tuple[int, ...]         # all global states of the box


class RSM:
    """A recursive state machine with globally-numbered states."""

    def __init__(self, start_nonterminal: str, local_boxes: dict):
        """``local_boxes``: nonterminal → :class:`~repro.automata.nfa.NFA`
        (each with exactly one start state, local numbering)."""
        if start_nonterminal not in local_boxes:
            raise InvalidArgumentError(
                f"start nonterminal {start_nonterminal!r} has no box"
            )
        self.start_nonterminal = start_nonterminal
        self.boxes: dict[str, Box] = {}
        self.transitions: dict[str, list[tuple[int, int]]] = {}
        offset = 0
        for nt in sorted(local_boxes):
            nfa: NFA = local_boxes[nt]
            if len(nfa.starts) != 1:
                raise InvalidArgumentError(
                    f"box {nt!r} must have exactly one start state"
                )
            (start_local,) = nfa.starts
            self.boxes[nt] = Box(
                nonterminal=nt,
                start=start_local + offset,
                finals=frozenset(f + offset for f in nfa.finals),
                states=tuple(range(offset, offset + nfa.n)),
            )
            for label, pairs in nfa.transitions.items():
                bucket = self.transitions.setdefault(label, [])
                bucket.extend((s + offset, t + offset) for s, t in pairs)
            offset += nfa.n
        self.n_states = offset

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_regex_rules(cls, start: str, rules: dict) -> "RSM":
        """Build from ``nonterminal → regex`` (strings or ASTs).

        Anything named as a rule key is a nonterminal; all other symbols
        in the regexes are terminals.
        """
        local = {}
        for nt, rhs in rules.items():
            node = parse_regex(rhs) if isinstance(rhs, str) else rhs
            if not isinstance(node, Regex):
                raise InvalidArgumentError(f"rule for {nt!r} is not a regex")
            local[nt] = glushkov_nfa(node)
        return cls(start, local)

    @classmethod
    def from_cfg(cls, grammar: CFG) -> "RSM":
        """Build from a plain CFG: each box is the union of the
        concatenations of the nonterminal's alternatives."""
        rules: dict[str, Regex] = {}
        for nt in sorted(grammar.nonterminals):
            alternatives = [
                concat_all([Symbol(s) for s in p.rhs]) for p in grammar.rules_for(nt)
            ]
            if alternatives:
                rules[nt] = union_all(alternatives)
            else:
                rules[nt] = union_all([])  # ∅ box: nonterminal with no rules
        return cls.from_regex_rules(grammar.start, rules)

    # -- introspection ---------------------------------------------------

    @property
    def nonterminals(self) -> frozenset[str]:
        return frozenset(self.boxes)

    @property
    def terminals(self) -> frozenset[str]:
        return frozenset(self.transitions) - self.nonterminals

    @property
    def labels(self) -> list[str]:
        return sorted(self.transitions)

    def nullable_nonterminals(self) -> frozenset[str]:
        """Nonterminals whose box accepts ε *directly* (start is final).

        Note: the full "derives ε" relation additionally closes over
        nonterminal transitions; the tensor engine discovers those
        through its fixpoint loop, so only the direct form is needed to
        seed it.
        """
        return frozenset(
            nt for nt, box in self.boxes.items() if box.start in box.finals
        )

    # -- lowering ----------------------------------------------------------

    def transition_matrices(self, ctx, labels=None) -> dict:
        """One boolean ``n_states x n_states`` matrix per symbol."""
        import numpy as np

        wanted = list(labels) if labels is not None else self.labels
        out = {}
        for label in wanted:
            pairs = self.transitions.get(label, [])
            if pairs:
                arr = np.asarray(pairs, dtype=np.int64)
                out[label] = ctx.matrix_from_lists(
                    (self.n_states, self.n_states), arr[:, 0], arr[:, 1]
                )
            else:
                out[label] = ctx.matrix_empty((self.n_states, self.n_states))
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"RSM(start={self.start_nonterminal!r}, boxes={len(self.boxes)}, "
            f"states={self.n_states})"
        )

"""Context-free grammars over named symbols.

Symbols are strings; the nonterminal set is exactly the set of
left-hand sides, everything else on a right-hand side is a terminal
(edge label — possibly an inverse ``~label``).  ``eps`` denotes the
empty word.

Text syntax (one rule set per line, alternatives with ``|``)::

    S -> ~subClassOf S subClassOf | ~type S type | ~subClassOf subClassOf | ~type type

which is the paper's query :math:`G_1`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.errors import InvalidArgumentError

#: Token denoting the empty word on a right-hand side.
EPS = "eps"


@dataclass(frozen=True)
class Production:
    """One production ``lhs -> rhs`` (rhs empty tuple = epsilon rule)."""

    lhs: str
    rhs: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.lhs:
            raise InvalidArgumentError("production lhs must be non-empty")
        if EPS in self.rhs:
            raise InvalidArgumentError("use an empty rhs for epsilon, not 'eps'")

    def __str__(self) -> str:  # pragma: no cover - debug aid
        return f"{self.lhs} -> {' '.join(self.rhs) if self.rhs else EPS}"


@dataclass
class CFG:
    """A context-free grammar."""

    start: str
    productions: list[Production] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not any(p.lhs == self.start for p in self.productions):
            # A grammar whose start symbol has no rules generates ∅; allow
            # it but normalize the production list.
            pass
        seen = set()
        unique = []
        for p in self.productions:
            if p not in seen:
                seen.add(p)
                unique.append(p)
        self.productions = unique

    # -- parsing -------------------------------------------------------------

    @classmethod
    def from_text(cls, text: str, start: str | None = None) -> "CFG":
        """Parse the rule syntax; the first lhs is the start by default."""
        productions: list[Production] = []
        first_lhs: str | None = None
        for lineno, raw in enumerate(text.splitlines(), 1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            if "->" not in line:
                raise InvalidArgumentError(f"line {lineno}: missing '->'")
            lhs_part, rhs_part = line.split("->", 1)
            lhs = lhs_part.strip()
            if not lhs or " " in lhs:
                raise InvalidArgumentError(f"line {lineno}: bad lhs {lhs!r}")
            if first_lhs is None:
                first_lhs = lhs
            for alt in rhs_part.split("|"):
                symbols = alt.split()
                if symbols == [EPS] or not symbols:
                    productions.append(Production(lhs, ()))
                else:
                    if EPS in symbols:
                        raise InvalidArgumentError(
                            f"line {lineno}: 'eps' mixed with symbols"
                        )
                    productions.append(Production(lhs, tuple(symbols)))
        if first_lhs is None:
            raise InvalidArgumentError("empty grammar text")
        return cls(start=start or first_lhs, productions=productions)

    # -- introspection ---------------------------------------------------

    @property
    def nonterminals(self) -> frozenset[str]:
        return frozenset(p.lhs for p in self.productions) | {self.start}

    @property
    def terminals(self) -> frozenset[str]:
        nts = self.nonterminals
        out = set()
        for p in self.productions:
            out.update(s for s in p.rhs if s not in nts)
        return frozenset(out)

    def rules_for(self, nonterminal: str) -> list[Production]:
        return [p for p in self.productions if p.lhs == nonterminal]

    def nullable_nonterminals(self) -> frozenset[str]:
        """Nonterminals deriving ε (standard fixpoint)."""
        nullable: set[str] = set()
        changed = True
        while changed:
            changed = False
            for p in self.productions:
                if p.lhs in nullable:
                    continue
                if all(s in nullable for s in p.rhs):
                    nullable.add(p.lhs)
                    changed = True
        return frozenset(nullable)

    # -- oracle ----------------------------------------------------------

    def generates(self, word: tuple[str, ...], *, max_steps: int = 10_000) -> bool:
        """Membership test via CYK on the weak-CNF form (test oracle).

        The wCNF transform is cached on the instance (productions are
        normalized at construction and treated as immutable afterwards).
        """
        from repro.grammar.cnf import cached_wcnf

        wcnf = cached_wcnf(self)
        n = len(word)
        if n == 0:
            return Production(wcnf.start, ()) in wcnf.productions
        # table[i][j] = set of nonterminals deriving word[i:j+1]
        table = [[set() for _ in range(n)] for _ in range(n)]
        for i, sym in enumerate(word):
            for p in wcnf.productions:
                if p.rhs == (sym,):
                    table[i][i].add(p.lhs)
        for span in range(2, n + 1):
            for i in range(n - span + 1):
                j = i + span - 1
                for k in range(i, j):
                    for p in wcnf.productions:
                        if len(p.rhs) == 2:
                            b, c = p.rhs
                            if b in table[i][k] and c in table[k + 1][j]:
                                table[i][j].add(p.lhs)
        return wcnf.start in table[0][n - 1]

    def to_text(self) -> str:
        """Render grouped by lhs in first-appearance order."""
        order: list[str] = []
        for p in self.productions:
            if p.lhs not in order:
                order.append(p.lhs)
        lines = []
        for lhs in order:
            alts = [
                " ".join(p.rhs) if p.rhs else EPS for p in self.rules_for(lhs)
            ]
            lines.append(f"{lhs} -> {' | '.join(alts)}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CFG(start={self.start!r}, rules={len(self.productions)}, "
            f"nonterminals={len(self.nonterminals)}, terminals={len(self.terminals)})"
        )


def fresh_symbol(base: str, taken) -> str:
    """A symbol named after ``base`` not colliding with ``taken``."""
    if base not in taken:
        return base
    for i in itertools.count():
        candidate = f"{base}_{i}"
        if candidate not in taken:
            return candidate
    raise AssertionError("unreachable")

"""Weak Chomsky normal form.

Azimov's matrix CFPQ algorithm needs every production in one of the
forms ``A → a``, ``A → B C`` or ``S → ε``.  The transform below is the
standard pipeline — long-rule splitting, epsilon elimination (keeping
start nullability), unit elimination, terminal isolation — implemented
so the intermediate blowup is observable: :func:`to_wcnf` returns a
grammar whose size the CFPQ benchmark reports next to the original's
(the paper attributes Mtx's slowdown on complex queries to exactly this
growth).
"""

from __future__ import annotations

import itertools
from collections import defaultdict

from repro.errors import InvalidArgumentError
from repro.grammar.cfg import CFG, Production, fresh_symbol


def cached_wcnf(grammar: CFG) -> CFG:
    """Memoized :func:`to_wcnf` (grammars are immutable after parse)."""
    wcnf = getattr(grammar, "_wcnf_cache", None)
    if wcnf is None:
        wcnf = to_wcnf(grammar)
        object.__setattr__(grammar, "_wcnf_cache", wcnf)
    return wcnf


def to_wcnf(grammar: CFG) -> CFG:
    """Transform to weak CNF.  The start symbol is preserved by name."""
    taken = set(grammar.nonterminals) | set(grammar.terminals)

    # 0. Fresh start symbol if the start appears on any rhs (so S → ε can
    #    be kept without enabling ε in contexts).
    start = grammar.start
    productions = list(grammar.productions)
    if any(start in p.rhs for p in productions):
        new_start = fresh_symbol(f"{start}'", taken)
        taken.add(new_start)
        productions.append(Production(new_start, (start,)))
        start = new_start

    # 1. Split long rules: A → X1 X2 … Xk  ⇒  A → X1 A1, A1 → X2 A2, …
    short: list[Production] = []
    counter = itertools.count()
    for p in productions:
        rhs = p.rhs
        lhs = p.lhs
        while len(rhs) > 2:
            link = fresh_symbol(f"_{p.lhs}{next(counter)}", taken)
            taken.add(link)
            short.append(Production(lhs, (rhs[0], link)))
            lhs, rhs = link, rhs[1:]
        short.append(Production(lhs, rhs))

    # 2. Epsilon elimination.
    nullable = CFG(start=start, productions=short).nullable_nonterminals()
    no_eps: set[Production] = set()
    for p in short:
        if not p.rhs:
            continue
        # Expand every subset of nullable occurrences.
        options: list[list[tuple[str, ...]]] = []
        slots = [
            (sym, sym in nullable) for sym in p.rhs
        ]
        expansions = [()]
        for sym, can_drop in slots:
            with_sym = [e + (sym,) for e in expansions]
            expansions = with_sym + (expansions if can_drop else [])
        for rhs in expansions:
            if rhs:
                no_eps.add(Production(p.lhs, rhs))
    if start in nullable:
        no_eps.add(Production(start, ()))

    # 3. Unit elimination: A →* B by unit chains, then copy B's non-unit rules.
    nts = {p.lhs for p in no_eps} | {start}
    unit_reach: dict[str, set[str]] = {nt: {nt} for nt in nts}
    changed = True
    while changed:
        changed = False
        for p in no_eps:
            if len(p.rhs) == 1 and p.rhs[0] in nts:
                for src, reach in unit_reach.items():
                    if p.lhs in reach and p.rhs[0] not in reach:
                        reach.add(p.rhs[0])
                        changed = True
    no_units: set[Production] = set()
    by_lhs: dict[str, list[Production]] = defaultdict(list)
    for p in no_eps:
        by_lhs[p.lhs].append(p)
    for src, reach in unit_reach.items():
        for target in reach:
            for p in by_lhs.get(target, ()):  # copy non-unit rules
                if len(p.rhs) == 1 and p.rhs[0] in nts:
                    continue
                no_units.add(Production(src, p.rhs))

    # 4. Terminal isolation inside binary rules.
    final: set[Production] = set()
    term_nt: dict[str, str] = {}

    def wrap_terminal(sym: str) -> str:
        if sym in nts:
            return sym
        if sym not in term_nt:
            name = fresh_symbol(f"_t_{sym.lstrip('~')}", taken)
            taken.add(name)
            term_nt[sym] = name
        return term_nt[sym]

    for p in no_units:
        if len(p.rhs) == 2:
            b, c = (wrap_terminal(s) for s in p.rhs)
            final.add(Production(p.lhs, (b, c)))
        else:
            final.add(p)
    for sym, name in term_nt.items():
        final.add(Production(name, (sym,)))

    ordered = sorted(final, key=lambda p: (p.lhs != start, p.lhs, p.rhs))
    result = CFG(start=start, productions=ordered)
    _validate_wcnf(result)
    return result


def _validate_wcnf(grammar: CFG) -> None:
    nts = grammar.nonterminals
    for p in grammar.productions:
        if not p.rhs:
            if p.lhs != grammar.start:
                raise InvalidArgumentError(f"epsilon rule on non-start: {p}")
        elif len(p.rhs) == 1:
            if p.rhs[0] in nts:
                raise InvalidArgumentError(f"unit rule survived: {p}")
        elif len(p.rhs) == 2:
            if any(s not in nts for s in p.rhs):
                raise InvalidArgumentError(f"terminal in binary rule: {p}")
        else:
            raise InvalidArgumentError(f"long rule survived: {p}")

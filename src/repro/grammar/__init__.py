"""Context-free grammar substrate (S11) for CFPQ.

* :mod:`repro.grammar.cfg` — grammars with named symbols; text parser
  for the ``S -> a S b | eps`` rule syntax (inverse relations written
  ``~label``, matching the paper's overline notation).
* :mod:`repro.grammar.cnf` — the weak Chomsky normal form transform
  Azimov's matrix algorithm requires (the paper notes this transform
  "leads to the grammar size increase, and hence worsens performance" —
  the CFPQ benchmark shows exactly that effect).
* :mod:`repro.grammar.rsm` — recursive state machines: one NFA box per
  nonterminal built from a regex over terminals *and* nonterminals; the
  tensor algorithm's query operand.  No normal form needed — the
  advantage the tensor algorithm claims.
"""

from repro.grammar.cfg import CFG, Production
from repro.grammar.cnf import to_wcnf
from repro.grammar.rsm import RSM, Box

__all__ = ["Box", "CFG", "Production", "RSM", "to_wcnf"]

"""Deterministic automata: subset construction and Moore minimization."""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.automata.nfa import NFA
from repro.errors import InvalidArgumentError


@dataclass
class DFA:
    """Complete or partial DFA with integer states.

    ``delta[state][label]`` is the successor (absent = dead).  A DFA is
    also a valid NFA input to the query engines; :meth:`to_nfa` adapts.
    """

    n: int
    start: int
    finals: frozenset[int]
    delta: dict = field(default_factory=dict)  # state -> {label: state}

    def __post_init__(self) -> None:
        if not 0 <= self.start < self.n:
            raise InvalidArgumentError("start state out of range")
        for s, row in self.delta.items():
            if not 0 <= s < self.n:
                raise InvalidArgumentError(f"state {s} out of range")
            for label, t in row.items():
                if not 0 <= t < self.n:
                    raise InvalidArgumentError(f"target {t} out of range")

    @property
    def labels(self) -> list[str]:
        out = set()
        for row in self.delta.values():
            out.update(row)
        return sorted(out)

    def accepts(self, word) -> bool:
        state = self.start
        for sym in word:
            row = self.delta.get(state, {})
            if sym not in row:
                return False
            state = row[sym]
        return state in self.finals

    def to_nfa(self) -> NFA:
        transitions: dict[str, list[tuple[int, int]]] = defaultdict(list)
        for s, row in self.delta.items():
            for label, t in row.items():
                transitions[label].append((s, t))
        return NFA(self.n, frozenset({self.start}), self.finals, dict(transitions))


def determinize(nfa: NFA) -> DFA:
    """Subset construction (partial DFA — dead state omitted)."""
    # Pre-index transitions by (state, label).
    by_state: dict[int, dict[str, set[int]]] = defaultdict(lambda: defaultdict(set))
    for label, pairs in nfa.transitions.items():
        for s, t in pairs:
            by_state[s][label].add(t)

    start_set = frozenset(nfa.starts)
    ids: dict[frozenset[int], int] = {start_set: 0}
    order = [start_set]
    delta: dict[int, dict[str, int]] = {}
    queue = [start_set]
    while queue:
        cur = queue.pop()
        row: dict[str, int] = {}
        outgoing: dict[str, set[int]] = defaultdict(set)
        for s in cur:
            for label, targets in by_state[s].items():
                outgoing[label] |= targets
        for label, targets in outgoing.items():
            key = frozenset(targets)
            if key not in ids:
                ids[key] = len(ids)
                order.append(key)
                queue.append(key)
            row[label] = ids[key]
        delta[ids[cur]] = row

    finals = frozenset(
        ids[subset] for subset in order if subset & nfa.finals
    )
    return DFA(len(ids), 0, finals, delta)


def minimize(dfa: DFA) -> DFA:
    """Moore partition refinement on a completed copy of ``dfa``.

    The dead state (if the DFA is partial) participates in refinement
    and is dropped again on output.
    """
    labels = dfa.labels
    dead = dfa.n  # virtual dead state
    total = dfa.n + 1

    def step(s: int, label: str) -> int:
        if s == dead:
            return dead
        return dfa.delta.get(s, {}).get(label, dead)

    # Initial partition: finals vs non-finals (dead is non-final).
    block = [1 if s in dfa.finals else 0 for s in range(dfa.n)] + [0]
    while True:
        # Signature: (block, successor blocks per label).
        signatures: dict[tuple, int] = {}
        new_block = [0] * total
        for s in range(total):
            sig = (block[s],) + tuple(block[step(s, l)] for l in labels)
            if sig not in signatures:
                signatures[sig] = len(signatures)
            new_block[s] = signatures[sig]
        if new_block == block:
            break
        block = new_block

    # Rebuild, skipping the dead block entirely (transitions into it vanish).
    dead_block = block[dead]
    kept = sorted({b for s, b in enumerate(block[:-1]) if b != dead_block})
    remap = {b: i for i, b in enumerate(kept)}
    delta: dict[int, dict[str, int]] = defaultdict(dict)
    finals = set()
    for s in range(dfa.n):
        b = block[s]
        if b == dead_block:
            continue
        sb = remap[b]
        if s in dfa.finals:
            finals.add(sb)
        for label in labels:
            t = step(s, label)
            if t != dead and block[t] != dead_block:
                delta[sb][label] = remap[block[t]]
    if block[dfa.start] == dead_block:
        # Empty language: single non-final state.
        return DFA(1, 0, frozenset(), {})
    return DFA(len(kept), remap[block[dfa.start]], frozenset(finals), dict(delta))

"""Nondeterministic finite automata.

:class:`NFA` is the engine-facing representation: integer states,
label → transition-pair lists, start/final state sets, no epsilon
transitions (constructions eliminate them).  :func:`thompson_nfa`
compiles a regex AST via Thompson's construction followed by epsilon
closure elimination.

``transition_matrices`` lowers the automaton to one boolean matrix per
symbol — the query-side operand of the RPQ Kronecker product.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

from repro.automata.regex_ast import (
    Concat,
    Empty,
    Epsilon,
    Optional,
    Plus,
    Regex,
    Star,
    Symbol,
    Union,
)
from repro.errors import InvalidArgumentError


@dataclass
class NFA:
    """Epsilon-free NFA with integer states ``0..n-1``."""

    n: int
    starts: frozenset[int]
    finals: frozenset[int]
    transitions: dict = field(default_factory=dict)  # label -> list[(s, t)]

    def __post_init__(self) -> None:
        for s in self.starts | self.finals:
            if not 0 <= s < self.n:
                raise InvalidArgumentError(f"state {s} outside [0, {self.n})")
        clean = defaultdict(list)
        for label, pairs in self.transitions.items():
            for s, t in pairs:
                if not (0 <= s < self.n and 0 <= t < self.n):
                    raise InvalidArgumentError(f"transition ({s},{t}) out of range")
                clean[label].append((int(s), int(t)))
        self.transitions = dict(clean)

    # -- introspection ---------------------------------------------------

    @property
    def labels(self) -> list[str]:
        return sorted(self.transitions)

    @property
    def num_transitions(self) -> int:
        return sum(len(p) for p in self.transitions.values())

    def accepts(self, word) -> bool:
        """Subset simulation (test oracle)."""
        current = set(self.starts)
        for sym in word:
            step = {
                t for s, t in self.transitions.get(sym, ()) if s in current
            }
            current = step
            if not current:
                return False
        return bool(current & self.finals)

    # -- transforms --------------------------------------------------------

    def reverse(self) -> "NFA":
        """Language-reversal automaton."""
        rev = {
            label: [(t, s) for s, t in pairs]
            for label, pairs in self.transitions.items()
        }
        return NFA(self.n, self.finals, self.starts, rev)

    def renumbered(self, offset: int, total: int) -> "NFA":
        """Copy with all states shifted by ``offset`` inside ``total`` states."""
        return NFA(
            total,
            frozenset(s + offset for s in self.starts),
            frozenset(s + offset for s in self.finals),
            {
                label: [(s + offset, t + offset) for s, t in pairs]
                for label, pairs in self.transitions.items()
            },
        )

    # -- lowering ----------------------------------------------------------

    def transition_matrices(self, ctx, labels=None) -> dict:
        """One boolean ``n x n`` matrix per symbol on the given context."""
        wanted = list(labels) if labels is not None else self.labels
        out = {}
        for label in wanted:
            pairs = self.transitions.get(label, [])
            if pairs:
                arr = np.asarray(pairs, dtype=np.int64)
                out[label] = ctx.matrix_from_lists((self.n, self.n), arr[:, 0], arr[:, 1])
            else:
                out[label] = ctx.matrix_empty((self.n, self.n))
        return out


# -- Thompson construction ---------------------------------------------------


class _Frag:
    """Fragment with one start, one accept, epsilon edges allowed."""

    __slots__ = ("start", "accept")

    def __init__(self, start: int, accept: int):
        self.start = start
        self.accept = accept


class _Builder:
    def __init__(self) -> None:
        self.count = 0
        self.eps: list[tuple[int, int]] = []
        self.sym: dict[str, list[tuple[int, int]]] = defaultdict(list)

    def new_state(self) -> int:
        s = self.count
        self.count += 1
        return s

    def build(self, node: Regex) -> _Frag:
        if isinstance(node, Empty):
            return _Frag(self.new_state(), self.new_state())
        if isinstance(node, Epsilon):
            s, t = self.new_state(), self.new_state()
            self.eps.append((s, t))
            return _Frag(s, t)
        if isinstance(node, Symbol):
            s, t = self.new_state(), self.new_state()
            self.sym[node.name].append((s, t))
            return _Frag(s, t)
        if isinstance(node, Concat):
            a = self.build(node.left)
            b = self.build(node.right)
            self.eps.append((a.accept, b.start))
            return _Frag(a.start, b.accept)
        if isinstance(node, Union):
            a = self.build(node.left)
            b = self.build(node.right)
            s, t = self.new_state(), self.new_state()
            self.eps += [(s, a.start), (s, b.start), (a.accept, t), (b.accept, t)]
            return _Frag(s, t)
        if isinstance(node, Star):
            a = self.build(node.inner)
            s, t = self.new_state(), self.new_state()
            self.eps += [(s, a.start), (s, t), (a.accept, a.start), (a.accept, t)]
            return _Frag(s, t)
        if isinstance(node, Plus):
            a = self.build(node.inner)
            s, t = self.new_state(), self.new_state()
            self.eps += [(s, a.start), (a.accept, a.start), (a.accept, t)]
            return _Frag(s, t)
        if isinstance(node, Optional):
            a = self.build(node.inner)
            s, t = self.new_state(), self.new_state()
            self.eps += [(s, a.start), (s, t), (a.accept, t)]
            return _Frag(s, t)
        raise InvalidArgumentError(f"unknown regex node {type(node).__name__}")


def thompson_nfa(node: Regex) -> NFA:
    """Compile a regex into an epsilon-free NFA (Thompson + ε-elimination).

    Epsilon elimination: compute ε-closures (boolean closure of the
    ε-edge relation), then pull symbol transitions through closures and
    propagate finality backwards.
    """
    builder = _Builder()
    frag = builder.build(node)
    n = builder.count
    if n == 0:
        # Pure-epsilon or empty expression with zero states.
        return NFA(1, frozenset({0}), frozenset({0} if node.nullable() else ()), {})

    # ε-closure via dense boolean closure (query automata are tiny).
    closure = np.eye(n, dtype=bool)
    for s, t in builder.eps:
        closure[s, t] = True
    while True:
        nxt = closure | (closure @ closure)
        if np.array_equal(nxt, closure):
            break
        closure = nxt

    transitions: dict[str, list[tuple[int, int]]] = {}
    for label, pairs in builder.sym.items():
        out = set()
        for s, t in pairs:
            # u --ε*--> s --label--> t --ε*--> v  becomes  u --label--> v's ε-closure start t
            sources = np.nonzero(closure[:, s])[0]
            for u in sources.tolist():
                out.add((u, t))
        transitions[label] = sorted(out)

    finals = frozenset(np.nonzero(closure[:, frag.accept])[0].tolist())
    starts = frozenset({frag.start})
    nfa = NFA(n, starts, finals, transitions)
    return _trim(nfa)


def _trim(nfa: NFA) -> NFA:
    """Drop states unreachable from starts or not co-reachable to finals."""
    fwd = _reach(nfa.n, nfa.starts, nfa.transitions, forward=True)
    bwd = _reach(nfa.n, nfa.finals, nfa.transitions, forward=False)
    alive = sorted(fwd & bwd)
    if not alive:
        return NFA(1, frozenset({0}), frozenset(), {})
    remap = {old: new for new, old in enumerate(alive)}
    keep = set(alive)
    return NFA(
        len(alive),
        frozenset(remap[s] for s in nfa.starts if s in keep),
        frozenset(remap[s] for s in nfa.finals if s in keep),
        {
            label: [
                (remap[s], remap[t])
                for s, t in pairs
                if s in keep and t in keep
            ]
            for label, pairs in nfa.transitions.items()
        },
    )


def _reach(n: int, seeds, transitions, *, forward: bool) -> set[int]:
    adj = defaultdict(list)
    for pairs in transitions.values():
        for s, t in pairs:
            if forward:
                adj[s].append(t)
            else:
                adj[t].append(s)
    seen = set(seeds)
    stack = list(seeds)
    while stack:
        u = stack.pop()
        for v in adj[u]:
            if v not in seen:
                seen.add(v)
                stack.append(v)
    return seen

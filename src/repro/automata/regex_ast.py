"""Regular expression abstract syntax.

Nodes are immutable and hash/compare structurally.  The alphabet is a
set of *named* symbols (edge labels like ``subClassOf`` or
``~broaderTransitive``), not characters — RPQ regexes range over graph
relations.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.errors import InvalidArgumentError


class Regex(abc.ABC):
    """Base class for regex AST nodes."""

    @abc.abstractmethod
    def nullable(self) -> bool:
        """Does the language contain the empty word."""

    @abc.abstractmethod
    def symbols(self) -> frozenset[str]:
        """Alphabet symbols appearing in the expression."""

    @abc.abstractmethod
    def to_string(self) -> str:
        """Render back to parseable query syntax."""

    def __str__(self) -> str:  # pragma: no cover - delegation
        return self.to_string()


@dataclass(frozen=True)
class Empty(Regex):
    """The empty language ∅ (matches nothing)."""

    def nullable(self) -> bool:
        return False

    def symbols(self) -> frozenset[str]:
        return frozenset()

    def to_string(self) -> str:
        return "∅"


@dataclass(frozen=True)
class Epsilon(Regex):
    """The language {ε}."""

    def nullable(self) -> bool:
        return True

    def symbols(self) -> frozenset[str]:
        return frozenset()

    def to_string(self) -> str:
        return "()"


@dataclass(frozen=True)
class Symbol(Regex):
    """A single alphabet symbol (an edge label)."""

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise InvalidArgumentError("symbol name must be non-empty")

    def nullable(self) -> bool:
        return False

    def symbols(self) -> frozenset[str]:
        return frozenset({self.name})

    def to_string(self) -> str:
        return self.name


@dataclass(frozen=True)
class Concat(Regex):
    """Concatenation ``left . right``."""

    left: Regex
    right: Regex

    def nullable(self) -> bool:
        return self.left.nullable() and self.right.nullable()

    def symbols(self) -> frozenset[str]:
        return self.left.symbols() | self.right.symbols()

    def to_string(self) -> str:
        def wrap(r: Regex) -> str:
            return f"({r.to_string()})" if isinstance(r, Union) else r.to_string()

        return f"{wrap(self.left)} . {wrap(self.right)}"


@dataclass(frozen=True)
class Union(Regex):
    """Alternation ``left | right``."""

    left: Regex
    right: Regex

    def nullable(self) -> bool:
        return self.left.nullable() or self.right.nullable()

    def symbols(self) -> frozenset[str]:
        return self.left.symbols() | self.right.symbols()

    def to_string(self) -> str:
        return f"{self.left.to_string()} | {self.right.to_string()}"


def _wrap_postfix(inner: Regex) -> str:
    if isinstance(inner, (Symbol, Epsilon, Empty)):
        return inner.to_string()
    return f"({inner.to_string()})"


@dataclass(frozen=True)
class Star(Regex):
    """Kleene closure ``inner*``."""

    inner: Regex

    def nullable(self) -> bool:
        return True

    def symbols(self) -> frozenset[str]:
        return self.inner.symbols()

    def to_string(self) -> str:
        return f"{_wrap_postfix(self.inner)}*"


@dataclass(frozen=True)
class Plus(Regex):
    """Positive closure ``inner+`` ≡ ``inner . inner*``."""

    inner: Regex

    def nullable(self) -> bool:
        return self.inner.nullable()

    def symbols(self) -> frozenset[str]:
        return self.inner.symbols()

    def to_string(self) -> str:
        return f"{_wrap_postfix(self.inner)}+"


@dataclass(frozen=True)
class Optional(Regex):
    """``inner?`` ≡ ``inner | ε``."""

    inner: Regex

    def nullable(self) -> bool:
        return True

    def symbols(self) -> frozenset[str]:
        return self.inner.symbols()

    def to_string(self) -> str:
        return f"{_wrap_postfix(self.inner)}?"


def concat_all(parts: list[Regex]) -> Regex:
    """Right-nested concatenation of a part list (ε for empty)."""
    if not parts:
        return Epsilon()
    out = parts[-1]
    for part in reversed(parts[:-1]):
        out = Concat(part, out)
    return out


def union_all(parts: list[Regex]) -> Regex:
    """Right-nested union of a part list (∅ for empty)."""
    if not parts:
        return Empty()
    out = parts[-1]
    for part in reversed(parts[:-1]):
        out = Union(part, out)
    return out

"""Glushkov's position automaton construction.

Builds an epsilon-free NFA with ``positions + 1`` states directly from
the regex AST via the classic nullable/first/last/follow sets — the
construction used by the provenance-aware RPQ engine of Wang et al. that
the paper's evaluation mirrors.  Compared to Thompson+elimination it
yields exactly one state per symbol occurrence plus a start state, which
keeps the Kronecker product operand small.
"""

from __future__ import annotations

from collections import defaultdict

from repro.automata.nfa import NFA
from repro.automata.regex_ast import (
    Concat,
    Empty,
    Epsilon,
    Optional,
    Plus,
    Regex,
    Star,
    Symbol,
    Union,
)
from repro.errors import InvalidArgumentError


class _Info:
    """Linearized-regex attributes for one subtree."""

    __slots__ = ("nullable", "first", "last")

    def __init__(self, nullable: bool, first: set[int], last: set[int]):
        self.nullable = nullable
        self.first = first
        self.last = last


def glushkov_nfa(node: Regex) -> NFA:
    """Compile a regex into its position automaton."""
    positions: list[str] = []  # symbol name per position (1-based ids)
    follow: dict[int, set[int]] = defaultdict(set)

    def walk(n: Regex) -> _Info:
        if isinstance(n, Empty):
            return _Info(False, set(), set())
        if isinstance(n, Epsilon):
            return _Info(True, set(), set())
        if isinstance(n, Symbol):
            positions.append(n.name)
            p = len(positions)  # 1-based position id
            return _Info(False, {p}, {p})
        if isinstance(n, Concat):
            a = walk(n.left)
            b = walk(n.right)
            for p in a.last:
                follow[p] |= b.first
            return _Info(
                a.nullable and b.nullable,
                a.first | (b.first if a.nullable else set()),
                b.last | (a.last if b.nullable else set()),
            )
        if isinstance(n, Union):
            a = walk(n.left)
            b = walk(n.right)
            return _Info(a.nullable or b.nullable, a.first | b.first, a.last | b.last)
        if isinstance(n, (Star, Plus)):
            a = walk(n.inner)
            for p in a.last:
                follow[p] |= a.first
            return _Info(
                True if isinstance(n, Star) else a.nullable, a.first, a.last
            )
        if isinstance(n, Optional):
            a = walk(n.inner)
            return _Info(True, a.first, a.last)
        raise InvalidArgumentError(f"unknown regex node {type(n).__name__}")

    info = walk(node)
    k = len(positions)
    # State 0 is the start; states 1..k are the positions.
    transitions: dict[str, list[tuple[int, int]]] = defaultdict(list)
    for p in sorted(info.first):
        transitions[positions[p - 1]].append((0, p))
    for p, follows in follow.items():
        for q in sorted(follows):
            transitions[positions[q - 1]].append((p, q))

    finals = set(info.last)
    if info.nullable:
        finals.add(0)
    return NFA(k + 1, frozenset({0}), frozenset(finals), dict(transitions))

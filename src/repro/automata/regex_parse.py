"""Recursive-descent parser for the RPQ query-template syntax.

Grammar (the paper's Table II notation):

.. code-block:: text

    union   := concat ('|' concat)*
    concat  := postfix (('.')? postfix)*        # explicit dot or juxtaposition
    postfix := atom ('*' | '+' | '?')*
    atom    := SYMBOL | '(' union ')'
    SYMBOL  := [~]?[A-Za-z_][A-Za-z0-9_]*

Symbols are whole edge-label identifiers (``a``, ``subClassOf``); a
leading ``~`` denotes the inverse relation (the paper's overline).
Whitespace separates tokens.  Example: ``(a | b)+ . (c | d)+`` is the
paper's Q15.
"""

from __future__ import annotations

import re

from repro.automata.regex_ast import (
    Concat,
    Epsilon,
    Optional,
    Plus,
    Regex,
    Star,
    Symbol,
    Union,
)
from repro.errors import InvalidArgumentError

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<sym>~?[A-Za-z_][A-Za-z0-9_]*)|(?P<op>[()|.*+?]))"
)


def _tokenize(text: str) -> list[str]:
    tokens: list[str] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            rest = text[pos:].strip()
            if not rest:
                break
            raise InvalidArgumentError(f"bad regex syntax near {rest[:20]!r}")
        tokens.append(match.group("sym") or match.group("op"))
        pos = match.end()
    return tokens


class _Parser:
    def __init__(self, tokens: list[str]):
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> str | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def take(self) -> str:
        tok = self.peek()
        if tok is None:
            raise InvalidArgumentError("unexpected end of regex")
        self.pos += 1
        return tok

    def parse_union(self) -> Regex:
        node = self.parse_concat()
        while self.peek() == "|":
            self.take()
            node = Union(node, self.parse_concat())
        return node

    def parse_concat(self) -> Regex:
        parts = [self.parse_postfix()]
        while True:
            tok = self.peek()
            if tok == ".":
                self.take()
                parts.append(self.parse_postfix())
            elif tok is not None and (tok == "(" or _is_symbol(tok)):
                parts.append(self.parse_postfix())
            else:
                break
        node = parts[0]
        for part in parts[1:]:
            node = Concat(node, part)
        return node

    def parse_postfix(self) -> Regex:
        node = self.parse_atom()
        while self.peek() in ("*", "+", "?"):
            op = self.take()
            if op == "*":
                node = Star(node)
            elif op == "+":
                node = Plus(node)
            else:
                node = Optional(node)
        return node

    def parse_atom(self) -> Regex:
        tok = self.take()
        if tok == "(":
            if self.peek() == ")":  # "()" is epsilon
                self.take()
                return Epsilon()
            node = self.parse_union()
            if self.take() != ")":
                raise InvalidArgumentError("missing closing parenthesis")
            return node
        if _is_symbol(tok):
            return Symbol(tok)
        raise InvalidArgumentError(f"unexpected token {tok!r}")


def _is_symbol(tok: str) -> bool:
    return bool(re.fullmatch(r"~?[A-Za-z_][A-Za-z0-9_]*", tok))


def parse_regex(text: str) -> Regex:
    """Parse the query syntax into a :class:`~repro.automata.regex_ast.Regex`."""
    tokens = _tokenize(text)
    if not tokens:
        return Epsilon()
    parser = _Parser(tokens)
    node = parser.parse_union()
    if parser.peek() is not None:
        raise InvalidArgumentError(
            f"trailing tokens after regex: {parser.tokens[parser.pos:]}"
        )
    return node

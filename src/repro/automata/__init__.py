"""Finite automata substrate (S10) for regular path queries.

Pipeline: a regex string (the paper's query-template syntax, Table II)
is parsed into an AST (:mod:`repro.automata.regex_parse`), compiled to
an NFA by either Thompson's construction with epsilon elimination
(:mod:`repro.automata.nfa`) or Glushkov's position construction
(:mod:`repro.automata.glushkov` — epsilon-free by design, the
construction the Wang et al. provenance-aware RPQ work uses), optionally
determinized/minimized (:mod:`repro.automata.dfa`), and lowered to one
boolean transition matrix per symbol for the Kronecker-product engine.
"""

from repro.automata.regex_ast import (
    Concat,
    Empty,
    Epsilon,
    Plus,
    Optional,
    Regex,
    Star,
    Symbol,
    Union,
)
from repro.automata.regex_parse import parse_regex
from repro.automata.nfa import NFA, thompson_nfa
from repro.automata.glushkov import glushkov_nfa
from repro.automata.dfa import DFA, determinize, minimize

__all__ = [
    "Concat",
    "DFA",
    "Empty",
    "Epsilon",
    "NFA",
    "Optional",
    "Plus",
    "Regex",
    "Star",
    "Symbol",
    "Union",
    "determinize",
    "glushkov_nfa",
    "minimize",
    "parse_regex",
    "thompson_nfa",
]

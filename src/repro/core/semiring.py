"""Semiring definitions and the semiring registry.

The library's native algebra is the **Boolean semiring**
``({0, 1}, ∨, ∧)`` — "values set {true, false} with false as an identity
element, '+' operation is defined as logical or and '×' is defined as
logical and" (paper, §Libraries Design).  The sparse backends implement
it natively (pattern-only storage), and the hybrid dispatcher keeps its
bit-packed fast path reserved for it (``is_boolean``).

Every other registered semiring is a *value* semiring: the generic
backend evaluates it natively over ``valcsr`` storage, and the dense
methods here (:meth:`Semiring.mxm_dense` and friends) are the reference
oracle used by tests, the dense algorithm fallbacks, and the service
selftest.

Registry
--------
Built-ins are looked up by :func:`get_semiring` (``"bool-or-and"``,
``"plus-times"``, ``"min-plus"``, ``"max-times"``, ``"plus-pair"``);
:func:`register_semiring` adds user-defined instances and
:func:`available_semirings` lists the names.  Backend operations accept
``semiring=`` as either a :class:`Semiring` or a registered name.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.errors import DimensionMismatchError, InvalidArgumentError


@dataclass(frozen=True)
class Semiring:
    """An algebraic semiring ``(D, add, mul, zero, one)``.

    ``add``/``mul`` are binary NumPy ufunc-compatible callables; ``zero``
    is the add-identity (and the mul-annihilator — see ``annihilator``),
    ``one`` the mul-identity.  ``add_reduce`` performs the reduction of
    ``add`` along an axis.

    Metadata for the sparse engines:

    ``is_boolean``
        Marks the native pattern-only algebra.  The hybrid dispatcher
        reserves the bit-packed/tiled fast path for boolean semirings;
        everything else routes to the value backend.
    ``annihilator``
        The absorbing element of ``mul`` (``mul(x, annihilator) ==
        annihilator``).  Sparse kernels rely on ``annihilator == zero``
        — implicit entries then stay implicit through products — so the
        default (``None`` → ``zero``) is what every sparse-evaluable
        semiring wants.
    ``add_ufunc``
        The raw :class:`numpy.ufunc` behind ``add`` when one exists
        (``np.minimum``, ``np.add``, ...).  Sparse kernels use its
        ``.at`` scatter / ``.reduceat`` segment forms; ``None`` falls
        back to a per-segment Python reduction.
    """

    name: str
    dtype: np.dtype
    add: Callable[[Any, Any], Any]
    mul: Callable[[Any, Any], Any]
    zero: Any
    one: Any
    add_reduce: Callable[..., Any]
    is_boolean: bool = False
    annihilator: Any = None
    add_ufunc: np.ufunc | None = field(default=None, repr=False)

    def __post_init__(self):
        if self.annihilator is None:
            object.__setattr__(self, "annihilator", self.zero)
        if self.add_ufunc is None and isinstance(self.add, np.ufunc):
            object.__setattr__(self, "add_ufunc", self.add)

    def mxm_dense(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Dense matrix product under this semiring (reference semantics).

        ``C[i, j] = add-reduce over k of mul(A[i, k], B[k, j])`` — O(mkn)
        but fully vectorized via broadcasting; intended for tests and
        small examples, not production sizes.
        """
        a = np.asarray(a, dtype=self.dtype)
        b = np.asarray(b, dtype=self.dtype)
        if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
            raise DimensionMismatchError("mxm_dense", a.shape[:2], b.shape[:2])
        # (m, k, 1) x (1, k, n) -> reduce over k.  Semirings with infinite
        # identities (min-plus) legitimately produce inf arithmetic here.
        with np.errstate(invalid="ignore", over="ignore"):
            products = self.mul(a[:, :, None], b[None, :, :])
            return self.add_reduce(products, axis=1)

    def ewise_add_dense(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        a = np.asarray(a, dtype=self.dtype)
        b = np.asarray(b, dtype=self.dtype)
        if a.shape != b.shape:
            raise DimensionMismatchError("ewise_add_dense", a.shape[:2], b.shape[:2])
        return self.add(a, b)

    def closure_dense(self, a: np.ndarray, *, reflexive: bool = False) -> np.ndarray:
        """Fixpoint of ``A ← A ⊕ A·A`` (transitive closure semantics).

        For the boolean semiring this is graph transitive closure; for
        min-plus it is all-pairs shortest paths.  Squaring doubles path
        lengths per iteration, so O(log n) dense products suffice.
        """
        a = np.asarray(a, dtype=self.dtype)
        if a.ndim != 2 or a.shape[0] != a.shape[1]:
            raise InvalidArgumentError("closure requires a square matrix")
        if reflexive:
            eye = np.full(a.shape, self.zero, dtype=self.dtype)
            np.fill_diagonal(eye, self.one)
            a = self.add(a, eye)
        while True:
            nxt = self.add(a, self.mxm_dense(a, a))
            if np.array_equal(nxt, a):
                return nxt
            a = nxt


def _bool_or(a, b):
    return np.logical_or(a, b)


def _bool_and(a, b):
    return np.logical_and(a, b)


def _pair(a, b):
    """PAIR multiply: 1 wherever both operands are present (nonzero).

    On sparse storage a multiply only ever sees *stored* intersections,
    so PAIR degenerates to the constant 1 there — which is exactly what
    makes ``plus-pair`` count common neighbours (triangle counting)
    instead of multiplying weights.
    """
    return np.logical_and(a != 0, b != 0).astype(np.result_type(a, b))


#: The library's native algebra.
BOOL_OR_AND = Semiring(
    name="bool-or-and",
    dtype=np.dtype(bool),
    add=_bool_or,
    mul=_bool_and,
    zero=False,
    one=True,
    add_reduce=np.logical_or.reduce,
    is_boolean=True,
    add_ufunc=np.logical_or,
)

#: Ordinary arithmetic — what the generic baseline computes.
PLUS_TIMES = Semiring(
    name="plus-times",
    dtype=np.dtype(np.float64),
    add=np.add,
    mul=np.multiply,
    zero=0.0,
    one=1.0,
    add_reduce=np.add.reduce,
)

#: Tropical semiring — shortest paths (paper future work: custom semirings).
MIN_PLUS = Semiring(
    name="min-plus",
    dtype=np.dtype(np.float64),
    add=np.minimum,
    mul=np.add,
    zero=np.inf,
    one=0.0,
    add_reduce=np.minimum.reduce,
)

#: Max-times over [0, ∞) — widest-path / max-reliability products.
#: 0 is both the add-identity and the mul-annihilator, so it is sparse-
#: evaluable without restriction (implicit zeros behave).
MAX_TIMES = Semiring(
    name="max-times",
    dtype=np.dtype(np.float64),
    add=np.maximum,
    mul=np.multiply,
    zero=0.0,
    one=1.0,
    add_reduce=np.maximum.reduce,
)

#: PLUS_PAIR — common-neighbour counting (triangle counting's algebra).
#: PAIR is not a true semiring multiply over the reals (it is not
#: distributive off the {0, 1} sub-domain), but over sparse operands a
#: multiply only sees stored intersections, where PAIR ≡ 1; the dense
#: reference applies the same presence test, keeping both paths equal.
PLUS_PAIR = Semiring(
    name="plus-pair",
    dtype=np.dtype(np.float64),
    add=np.add,
    mul=_pair,
    zero=0.0,
    one=1.0,
    add_reduce=np.add.reduce,
)

_REGISTRY = {
    s.name: s for s in (BOOL_OR_AND, PLUS_TIMES, MIN_PLUS, MAX_TIMES, PLUS_PAIR)
}


def get_semiring(name: str) -> Semiring:
    """Look up a registered semiring by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise InvalidArgumentError(
            f"unknown semiring {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def register_semiring(semiring: Semiring) -> Semiring:
    """Register a user-defined semiring under its ``name``.

    Re-registering a name replaces the previous entry (last wins), so
    applications can shadow a built-in with a tuned variant.  Returns
    the semiring for chaining.
    """
    if not isinstance(semiring, Semiring):
        raise InvalidArgumentError(
            f"register_semiring expects a Semiring, got {type(semiring).__name__}"
        )
    _REGISTRY[semiring.name] = semiring
    return semiring


def available_semirings() -> list[str]:
    """Sorted names of every registered semiring."""
    return sorted(_REGISTRY)

"""Semiring definitions.

The library's native algebra is the **Boolean semiring**
``({0, 1}, ∨, ∧)`` — "values set {true, false} with false as an identity
element, '+' operation is defined as logical or and '×' is defined as
logical and" (paper, §Libraries Design).  The sparse backends implement
it natively (pattern-only storage).

Additional semirings are provided for the dense reference path and for
the GraphBLAS-flavoured extensions (the paper's future-work section
mentions custom semirings such as min-plus): they are *not* accelerated
by the sparse boolean backends, but :meth:`Semiring.mxm_dense` gives a
correct dense evaluation used by tests and by the shortest-path example.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.errors import DimensionMismatchError, InvalidArgumentError


@dataclass(frozen=True)
class Semiring:
    """An algebraic semiring ``(D, add, mul, zero, one)``.

    ``add``/``mul`` are binary NumPy ufunc-compatible callables; ``zero``
    is the add-identity (and mul-annihilator), ``one`` the mul-identity.
    ``add_reduce`` performs the reduction of ``add`` along an axis.
    """

    name: str
    dtype: np.dtype
    add: Callable[[Any, Any], Any]
    mul: Callable[[Any, Any], Any]
    zero: Any
    one: Any
    add_reduce: Callable[..., Any]

    def mxm_dense(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Dense matrix product under this semiring (reference semantics).

        ``C[i, j] = add-reduce over k of mul(A[i, k], B[k, j])`` — O(mkn)
        but fully vectorized via broadcasting; intended for tests and
        small examples, not production sizes.
        """
        a = np.asarray(a, dtype=self.dtype)
        b = np.asarray(b, dtype=self.dtype)
        if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
            raise DimensionMismatchError("mxm_dense", a.shape[:2], b.shape[:2])
        # (m, k, 1) x (1, k, n) -> reduce over k.  Semirings with infinite
        # identities (min-plus) legitimately produce inf arithmetic here.
        with np.errstate(invalid="ignore", over="ignore"):
            products = self.mul(a[:, :, None], b[None, :, :])
            return self.add_reduce(products, axis=1)

    def ewise_add_dense(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        a = np.asarray(a, dtype=self.dtype)
        b = np.asarray(b, dtype=self.dtype)
        if a.shape != b.shape:
            raise DimensionMismatchError("ewise_add_dense", a.shape[:2], b.shape[:2])
        return self.add(a, b)

    def closure_dense(self, a: np.ndarray, *, reflexive: bool = False) -> np.ndarray:
        """Fixpoint of ``A ← A ⊕ A·A`` (transitive closure semantics).

        For the boolean semiring this is graph transitive closure; for
        min-plus it is all-pairs shortest paths.  Squaring doubles path
        lengths per iteration, so O(log n) dense products suffice.
        """
        a = np.asarray(a, dtype=self.dtype)
        if a.ndim != 2 or a.shape[0] != a.shape[1]:
            raise InvalidArgumentError("closure requires a square matrix")
        if reflexive:
            eye = np.full(a.shape, self.zero, dtype=self.dtype)
            np.fill_diagonal(eye, self.one)
            a = self.add(a, eye)
        while True:
            nxt = self.add(a, self.mxm_dense(a, a))
            if np.array_equal(nxt, a):
                return nxt
            a = nxt


def _bool_or(a, b):
    return np.logical_or(a, b)


def _bool_and(a, b):
    return np.logical_and(a, b)


#: The library's native algebra.
BOOL_OR_AND = Semiring(
    name="bool-or-and",
    dtype=np.dtype(bool),
    add=_bool_or,
    mul=_bool_and,
    zero=False,
    one=True,
    add_reduce=np.logical_or.reduce,
)

#: Ordinary arithmetic — what the generic baseline computes.
PLUS_TIMES = Semiring(
    name="plus-times",
    dtype=np.dtype(np.float64),
    add=np.add,
    mul=np.multiply,
    zero=0.0,
    one=1.0,
    add_reduce=np.add.reduce,
)

#: Tropical semiring — shortest paths (paper future work: custom semirings).
MIN_PLUS = Semiring(
    name="min-plus",
    dtype=np.dtype(np.float64),
    add=np.minimum,
    mul=np.add,
    zero=np.inf,
    one=0.0,
    add_reduce=np.minimum.reduce,
)

_REGISTRY = {s.name: s for s in (BOOL_OR_AND, PLUS_TIMES, MIN_PLUS)}


def get_semiring(name: str) -> Semiring:
    """Look up a built-in semiring by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise InvalidArgumentError(
            f"unknown semiring {name!r}; available: {sorted(_REGISTRY)}"
        ) from None

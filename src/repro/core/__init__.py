"""Public API (S7): the pyspbla-equivalent layer.

The original SPbLA stack is ``C++ core → C API → pyspbla``.  Here the
backends are the core, :class:`~repro.core.context.Context` is the
library handle (the C API's ``cuBool_Initialize`` /
``cuBool_Finalize``), and :class:`~repro.core.matrix.Matrix` /
:class:`~repro.core.vector.Vector` are the user-facing objects.

Quickstart::

    import repro

    with repro.Context(backend="cubool") as ctx:
        a = ctx.matrix_from_lists((4, 4), rows=[0, 1, 2], cols=[1, 2, 3])
        b = a @ a                  # boolean matrix product
        c = a | b                  # element-wise OR
        k = a.kron(b)              # Kronecker product
        print(c.to_lists())
"""

from repro.core.semiring import (
    BOOL_OR_AND,
    MAX_TIMES,
    MIN_PLUS,
    PLUS_PAIR,
    PLUS_TIMES,
    Semiring,
    available_semirings,
    get_semiring,
    register_semiring,
)
from repro.core.context import Context, default_context, init
from repro.core.matrix import Matrix
from repro.core.vector import Vector

__all__ = [
    "BOOL_OR_AND",
    "Context",
    "MAX_TIMES",
    "MIN_PLUS",
    "Matrix",
    "PLUS_PAIR",
    "PLUS_TIMES",
    "Semiring",
    "Vector",
    "available_semirings",
    "default_context",
    "get_semiring",
    "init",
    "register_semiring",
]

"""The public sparse boolean ``Matrix`` — pyspbla's user-facing object.

Wraps a backend matrix handle with a Pythonic surface covering the full
SPbLA operation list:

======================  ==========================================
SPbLA C API             Matrix API
======================  ==========================================
create/delete           ``Context.matrix_*`` / :meth:`Matrix.free`
fill with values        :meth:`Matrix.build` (via constructors)
read values             :meth:`Matrix.to_lists`
transpose               :attr:`Matrix.T` / :meth:`Matrix.transpose`
sub-matrix extraction   ``m[i0:i1, j0:j1]``
reduce to column        :meth:`Matrix.reduce_to_vector`
``C += M × N``          :meth:`Matrix.mxm` / ``@`` operator
``M += N``              :meth:`Matrix.ewise_add` / ``|`` operator
``K = M ⊗ N``           :meth:`Matrix.kron`
======================  ==========================================

Results stay on the creating context's backend; mixing matrices from
different contexts raises (matching the C API, where every object
belongs to one library instance).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.backends.base import BackendMatrix
from repro.errors import InvalidArgumentError, InvalidStateError


class Matrix:
    """Sparse boolean matrix bound to a :class:`~repro.core.context.Context`.

    Construct through the context factories
    (:meth:`Context.matrix_from_lists`, :meth:`Context.matrix_from_dense`,
    :meth:`Context.matrix_empty`, :meth:`Context.identity`,
    :meth:`Context.matrix_random`).
    """

    __slots__ = ("_handle", "_ctx", "__weakref__")

    def __init__(self, handle: BackendMatrix, ctx):
        self._handle = handle
        self._ctx = ctx

    # -- plumbing ----------------------------------------------------------

    @property
    def handle(self) -> BackendMatrix:
        if self._handle is None or self._handle.freed:
            raise InvalidStateError("matrix used after free()")
        return self._handle

    @property
    def context(self):
        return self._ctx

    def _peer(self, other: "Matrix", op: str) -> BackendMatrix:
        if not isinstance(other, Matrix):
            raise InvalidArgumentError(f"{op}: expected Matrix, got {type(other).__name__}")
        if other._ctx is not self._ctx:
            raise InvalidArgumentError(
                f"{op}: operands belong to different contexts"
            )
        return other.handle

    def free(self) -> None:
        """Release backing device memory (idempotent)."""
        if self._handle is not None:
            self._handle.free()
            self._handle = None

    def __del__(self):  # noqa: D105
        try:
            self.free()
        # __del__ during interpreter shutdown: modules may already be
        # torn down; raising here aborts the process.
        except Exception:  # pragma: no cover  # reprolint: disable=R4
            pass

    # -- shape & introspection ----------------------------------------------

    @property
    def shape(self) -> tuple[int, int]:
        return self.handle.shape

    @property
    def nrows(self) -> int:
        return self.handle.nrows

    @property
    def ncols(self) -> int:
        return self.handle.ncols

    @property
    def nnz(self) -> int:
        """Number of true entries."""
        return self.handle.nnz

    @property
    def density(self) -> float:
        cells = self.nrows * self.ncols
        return self.nnz / cells if cells else 0.0

    @property
    def storage_kind(self) -> str:
        """Kind of the resident storage format (``"csr"``, ``"coo"``,
        ``"bit"``, ...).  Under the hybrid backend this reports which
        format the adaptive dispatcher left the result in."""
        return self.handle.storage.kind

    def memory_bytes(self) -> int:
        """Storage-model bytes of the backing format (paper's metric)."""
        return self.handle.memory_bytes()

    # -- data exchange -----------------------------------------------------

    def to_lists(self) -> tuple[list[int], list[int]]:
        """Read back (rows, cols) of all true entries, canonical order."""
        rows, cols = self._ctx.backend.matrix_to_coo(self.handle)
        return rows.tolist(), cols.tolist()

    def to_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Read back (rows, cols) as NumPy arrays, canonical order."""
        return self._ctx.backend.matrix_to_coo(self.handle)

    def to_dense(self) -> np.ndarray:
        """Materialize as a dense boolean array (small matrices)."""
        rows, cols = self.to_arrays()
        out = np.zeros(self.shape, dtype=bool)
        if rows.size:
            out[rows, cols] = True
        return out

    def dup(self) -> "Matrix":
        """Deep copy."""
        return self._ctx._wrap(self._ctx.backend.duplicate(self.handle))

    def to_scipy(self):
        """Export the pattern as a ``scipy.sparse.csr_matrix`` of bools.

        SciPy is an optional interop dependency — raises a clear error
        when it is not installed.
        """
        try:
            from scipy import sparse
        except ImportError as exc:  # pragma: no cover - env dependent
            raise InvalidStateError("scipy is not installed") from exc
        rows, cols = self.to_arrays()
        data = np.ones(rows.size, dtype=bool)
        return sparse.csr_matrix(
            (data, (rows, cols)), shape=self.shape, dtype=bool
        )

    # -- operations ------------------------------------------------------

    def mxm(
        self,
        other: "Matrix",
        accumulate: "Matrix | None" = None,
        mask: "Matrix | None" = None,
        *,
        semiring=None,
    ) -> "Matrix":
        """Matrix product under ``semiring`` (default boolean OR-AND);
        with ``accumulate`` computes ``accumulate ⊕ (self · other)``
        (the C API's ``C += M × N``).

        ``mask`` is the GraphBLAS structural *complement* mask: the
        product is filtered to ``(self · other) ∧ ¬mask`` before the
        accumulate merge.  Passing the previous fixpoint as ``mask``
        makes the returned delta carry only *new* facts — its ``nnz``
        is the convergence test of the incremental engines
        (:mod:`repro.incr`).  ``semiring`` is a
        :class:`~repro.core.semiring.Semiring` or registered name; value
        semirings need a value-capable backend (generic or hybrid)."""
        acc = self._peer(accumulate, "mxm") if accumulate is not None else None
        msk = self._peer(mask, "mxm") if mask is not None else None
        out = self._ctx.backend.mxm(
            self.handle, self._peer(other, "mxm"), acc, msk, semiring=semiring
        )
        return self._ctx._wrap(out)

    def __matmul__(self, other: "Matrix") -> "Matrix":
        return self.mxm(other)

    def ewise_add(self, other: "Matrix", *, semiring=None) -> "Matrix":
        """Element-wise ⊕ (default OR)."""
        out = self._ctx.backend.ewise_add(
            self.handle, self._peer(other, "ewise_add"), semiring=semiring
        )
        return self._ctx._wrap(out)

    def __or__(self, other: "Matrix") -> "Matrix":
        return self.ewise_add(other)

    __add__ = __or__

    def ewise_mult(self, other: "Matrix", *, semiring=None) -> "Matrix":
        """Element-wise ⊗ (default AND — pattern intersection)."""
        out = self._ctx.backend.ewise_mult(
            self.handle, self._peer(other, "ewise_mult"), semiring=semiring
        )
        return self._ctx._wrap(out)

    def __and__(self, other: "Matrix") -> "Matrix":
        return self.ewise_mult(other)

    def kron(
        self,
        other: "Matrix",
        accumulate: "Matrix | None" = None,
        *,
        semiring=None,
    ) -> "Matrix":
        """Kronecker product ``self ⊗ other``; with ``accumulate``
        computes ``accumulate ⊕ (self ⊗ other)`` under the fused
        accumulate contract (see :meth:`Backend.mxm`): functional
        result, operands untouched, ``accumulate`` may alias either."""
        if accumulate is not None:
            out = self._ctx.backend.kron_accumulate(
                self.handle,
                self._peer(other, "kron"),
                self._peer(accumulate, "kron"),
                semiring=semiring,
            )
        else:
            out = self._ctx.backend.kron(
                self.handle, self._peer(other, "kron"), semiring=semiring
            )
        return self._ctx._wrap(out)

    def transpose(self) -> "Matrix":
        out = self._ctx.backend.transpose(self.handle)
        return self._ctx._wrap(out)

    @property
    def T(self) -> "Matrix":
        return self.transpose()

    def extract_submatrix(self, i: int, j: int, nrows: int, ncols: int) -> "Matrix":
        out = self._ctx.backend.extract_submatrix(self.handle, i, j, nrows, ncols)
        return self._ctx._wrap(out)

    def __getitem__(self, key) -> "Matrix":
        """Slice-based sub-matrix extraction: ``m[i0:i1, j0:j1]``.

        Only contiguous, step-1 slices are supported (matching the C
        API's rectangular extraction).
        """
        if not (isinstance(key, tuple) and len(key) == 2):
            raise InvalidArgumentError("matrix indexing requires m[rows, cols] slices")
        rs, cs = key
        if not (isinstance(rs, slice) and isinstance(cs, slice)):
            raise InvalidArgumentError("matrix indexing requires slice objects")
        if rs.step not in (None, 1) or cs.step not in (None, 1):
            raise InvalidArgumentError("only step-1 slices are supported")
        i0, i1, _ = rs.indices(self.nrows)
        j0, j1, _ = cs.indices(self.ncols)
        return self.extract_submatrix(i0, j0, max(0, i1 - i0), max(0, j1 - j0))

    def tril(self, k: int = 0) -> "Matrix":
        """Lower-triangular part: entries with ``col <= row + k``.

        A coordinate-filter convenience (GraphBLAS ``select``-style);
        built on read-back + rebuild rather than a dedicated kernel.
        """
        rows, cols = self.to_arrays()
        keep = cols.astype(np.int64) <= rows.astype(np.int64) + k
        return self._ctx.matrix_from_lists(self.shape, rows[keep], cols[keep])

    def triu(self, k: int = 0) -> "Matrix":
        """Upper-triangular part: entries with ``col >= row + k``."""
        rows, cols = self.to_arrays()
        keep = cols.astype(np.int64) >= rows.astype(np.int64) + k
        return self._ctx.matrix_from_lists(self.shape, rows[keep], cols[keep])

    def extract_row(self, i: int):
        """Row ``i`` as a sparse :class:`~repro.core.vector.Vector`
        of length ``ncols`` (a 1×n sub-matrix extraction)."""
        from repro.core.vector import Vector

        row = self.extract_submatrix(int(i), 0, 1, self.ncols)
        try:
            _, cols = row.to_arrays()
        finally:
            row.free()
        return Vector.from_indices(self._ctx, self.ncols, cols)

    def extract_col(self, j: int):
        """Column ``j`` as a sparse :class:`~repro.core.vector.Vector`
        of length ``nrows``."""
        from repro.core.vector import Vector

        col = self.extract_submatrix(0, int(j), self.nrows, 1)
        try:
            rows, _ = col.to_arrays()
        finally:
            col.free()
        return Vector.from_indices(self._ctx, self.nrows, rows)

    def reduce_to_vector(self):
        """OR-reduce rows to a sparse :class:`~repro.core.vector.Vector`."""
        from repro.core.vector import Vector

        col = self._ctx.backend.reduce_to_column(self.handle)
        try:
            rows, _ = self._ctx.backend.matrix_to_coo(col)
        finally:
            col.free()
        return Vector.from_indices(self._ctx, self.nrows, rows)

    # -- predicates / dunder ----------------------------------------------

    def get(self, i: int, j: int) -> bool:
        """Single-entry membership test."""
        storage = self.handle.storage
        return bool(storage.get(int(i), int(j)))

    def __contains__(self, coord: tuple[int, int]) -> bool:
        i, j = coord
        return self.get(i, j)

    def equals(self, other: "Matrix") -> bool:
        """Exact pattern equality."""
        peer = self._peer(other, "equals")
        if self.shape != peer.shape or self.nnz != peer.nnz:
            return False
        r1, c1 = self.to_arrays()
        r2, c2 = self._ctx.backend.matrix_to_coo(peer)
        return bool(np.array_equal(r1, r2) and np.array_equal(c1, c2))

    def __iter__(self) -> Iterator[tuple[int, int]]:
        """Iterate (row, col) pairs in canonical order."""
        rows, cols = self.to_arrays()
        return zip(rows.tolist(), cols.tolist())

    def __len__(self) -> int:
        return self.nnz

    def __bool__(self) -> bool:
        return self.nnz > 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        if self._handle is None or self._handle.freed:
            return "Matrix(<freed>)"
        return (
            f"Matrix({self.nrows}x{self.ncols}, nnz={self.nnz}, "
            f"backend={self._ctx.backend_name})"
        )

"""Library context: backend selection and lifetime management.

A :class:`Context` corresponds to the SPbLA C API's library handle
(``cuBool_Initialize(hints) … cuBool_Finalize()``): it owns a backend
(and through it a simulated device), creates matrices, and releases
every matrix it created when finalized.  The paper's design section
describes exactly this "option to automatically select a specific
implementation depending on the capabilities of the target device" —
:func:`Context.auto` models the planned automatic backend choice.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.backends import get_backend
from repro.backends.base import Backend, BackendMatrix
from repro.errors import InvalidArgumentError, InvalidStateError
from repro.gpu.device import Device


def _resolve_hybrid_mode(hybrid: bool | str | None) -> str | None:
    """Normalize the ``hybrid=`` kwarg; ``None`` defers to ``REPRO_HYBRID``."""
    if hybrid is None:
        from repro.backends.hybrid import hybrid_mode_from_env

        return hybrid_mode_from_env()
    if hybrid is False or hybrid == "off":
        return None
    if hybrid is True or hybrid == "auto":
        return "auto"
    if hybrid in ("bit", "sparse"):
        return hybrid
    raise InvalidArgumentError(
        f"hybrid={hybrid!r} not understood (use off/auto/bit/sparse)"
    )


class Context:
    """An initialized library instance bound to one backend.

    Parameters
    ----------
    backend:
        Backend name: ``"cubool"`` (CSR, CUDA-like), ``"clbool"``
        (COO, OpenCL-like), ``"cpu"`` (sequential reference),
        ``"generic"``/``"generic64"`` (value-carrying baseline),
        ``"hybrid"`` (adaptive sparse/bit dispatch over cubool).
    device:
        Optional explicit simulated device (benchmarks pass one to read
        its counters); by default the backend creates its own.
    hybrid:
        Hybrid sparse/bit dispatch policy for the ``cubool``/``clbool``
        backends: ``None`` (default) consults the ``REPRO_HYBRID`` env
        var; ``False``/``"off"`` forces the pure sparse path (byte
        identical to the unwrapped backend); ``True``/``"auto"`` enables
        cost-model dispatch; ``"bit"``/``"sparse"`` force one regime.
    hybrid_threshold:
        Crossover density calibrating the hybrid cost model (see
        :class:`repro.backends.hybrid.HybridPolicy`).
    hybrid_autotune:
        Replace the analytic crossover with one measured on this host
        by a short probe sweep at context creation
        (:func:`repro.backends.hybrid.autotune_crossover`; cached per
        process).  ``None`` (default) consults ``REPRO_HYBRID_AUTOTUNE``;
        an explicit ``hybrid_threshold`` always wins.
    """

    def __init__(
        self,
        backend: str = "cubool",
        device: Device | None = None,
        *,
        hybrid: bool | str | None = None,
        hybrid_threshold: float | None = None,
        hybrid_autotune: bool | None = None,
    ):
        self._backend: Backend = get_backend(backend, device=device)
        mode = _resolve_hybrid_mode(hybrid)
        if hybrid_autotune is None:
            from repro.backends.hybrid import autotune_from_env

            hybrid_autotune = autotune_from_env()
        if mode is not None and backend in ("cubool", "clbool"):
            from repro.backends.hybrid import wrap_backend

            self._backend = wrap_backend(
                self._backend,
                mode=mode,
                crossover_density=hybrid_threshold,
                autotune=hybrid_autotune,
            )
        elif hybrid_threshold is not None or hybrid_autotune:
            from repro.backends.hybrid import HybridBackend, autotune_crossover

            if isinstance(self._backend, HybridBackend):
                from dataclasses import replace

                crossover = (
                    hybrid_threshold
                    if hybrid_threshold is not None
                    else autotune_crossover(self._backend.inner)
                )
                self._backend.policy = replace(
                    self._backend.policy, crossover_density=crossover
                )
        self._live: list = []
        self._finalized = False
        self._lock = threading.Lock()

    # -- factory helpers ---------------------------------------------------

    @classmethod
    def auto(cls, *, prefer_memory: bool = False) -> "Context":
        """Pick a backend automatically.

        Models SPbLA's planned auto-selection: the CSR backend is the
        general default; ``prefer_memory=True`` selects the COO backend,
        which the paper recommends for hyper-sparse data where memory
        footprint dominates.
        """
        return cls(backend="clbool" if prefer_memory else "cubool")

    # -- lifecycle -----------------------------------------------------------

    def _check_alive(self) -> None:
        if self._finalized:
            raise InvalidStateError("context used after finalize()")

    def finalize(self) -> None:
        """Release every matrix created through this context (idempotent)."""
        if self._finalized:
            return
        self._finalized = True
        for ref in self._live:
            m = ref()
            if m is not None:
                m.free()
        self._live.clear()

    def __enter__(self) -> "Context":
        return self

    def __exit__(self, *exc) -> None:
        self.finalize()

    # -- introspection ---------------------------------------------------

    @property
    def backend(self) -> Backend:
        self._check_alive()
        return self._backend

    @property
    def backend_name(self) -> str:
        return self._backend.name

    @property
    def device(self) -> Device:
        return self._backend.device

    # -- matrix creation (returns repro.core.matrix.Matrix) ----------------

    def _register(self, matrix) -> None:
        import weakref

        with self._lock:
            self._live.append(weakref.ref(matrix))
            # Opportunistically drop dead references.
            if len(self._live) > 1024:
                self._live = [r for r in self._live if r() is not None]

    def _wrap(self, handle: BackendMatrix):
        from repro.core.matrix import Matrix

        m = Matrix(handle, self)
        self._register(m)
        return m

    def matrix_empty(self, shape: tuple[int, int]):
        """All-false matrix of the given shape."""
        self._check_alive()
        return self._wrap(self._backend.matrix_empty(shape))

    def matrix_from_lists(self, shape: tuple[int, int], rows, cols):
        """Matrix from row/column index lists (duplicates collapse)."""
        self._check_alive()
        return self._wrap(self._backend.matrix_from_coo(rows, cols, shape))

    def matrix_from_dense(self, dense: np.ndarray):
        """Matrix from a dense boolean/truthy array."""
        self._check_alive()
        return self._wrap(self._backend.matrix_from_dense(dense))

    def identity(self, n: int):
        """n x n identity pattern."""
        self._check_alive()
        return self._wrap(self._backend.identity(n))

    def matrix_random(
        self,
        shape: tuple[int, int],
        density: float,
        *,
        seed: int | None = None,
    ):
        """Uniform random boolean matrix with expected ``density``."""
        self._check_alive()
        if not 0.0 <= density <= 1.0:
            raise InvalidArgumentError("density must be within [0, 1]")
        rng = np.random.default_rng(seed)
        nrows, ncols = int(shape[0]), int(shape[1])
        target = int(round(density * nrows * ncols))
        if target == 0 or nrows == 0 or ncols == 0:
            return self.matrix_empty(shape)
        rows = rng.integers(0, nrows, size=target)
        cols = rng.integers(0, ncols, size=target)
        return self.matrix_from_lists(shape, rows, cols)

    def matrix_from_scipy(self, sparse_matrix):
        """Import the nonzero pattern of any ``scipy.sparse`` matrix."""
        coo = sparse_matrix.tocoo()
        keep = coo.data != 0 if coo.data is not None else slice(None)
        return self.matrix_from_lists(coo.shape, coo.row[keep], coo.col[keep])

    def vector_from_indices(self, n: int, indices):
        """Sparse boolean vector of length ``n`` with the given support."""
        from repro.core.vector import Vector

        self._check_alive()
        return Vector.from_indices(self, n, indices)

    def vector_empty(self, n: int):
        from repro.core.vector import Vector

        self._check_alive()
        return Vector.empty(self, n)


_default_lock = threading.Lock()
_default_context: Context | None = None


def default_context() -> Context:
    """Process-wide lazily-created context (cubool backend)."""
    global _default_context
    with _default_lock:
        if _default_context is None or _default_context._finalized:
            _default_context = Context()
        return _default_context


def init(backend: str = "cubool", device: Device | None = None) -> Context:
    """(Re)initialize the default context with an explicit backend."""
    global _default_context
    with _default_lock:
        if _default_context is not None:
            _default_context.finalize()
        _default_context = Context(backend=backend, device=device)
        return _default_context

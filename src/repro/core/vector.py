"""Sparse boolean vector.

The paper notes "the sparse vector is partially presented; its full
support will be added in the future" — this reproduction implements the
full planned surface.  A vector of length ``n`` is stored as an ``n × 1``
backend matrix, so every operation reuses the accelerated matrix
kernels: ``vxm`` is a ``1 × n`` by ``n × m`` product, ``mxv`` its
transpose-free dual, and element-wise OR is matrix add.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import InvalidArgumentError, InvalidStateError


class Vector:
    """Sparse boolean vector bound to a context."""

    __slots__ = ("_mat", "_ctx", "__weakref__")

    def __init__(self, mat, ctx):
        # ``mat`` is an (n, 1) core Matrix used as storage.
        self._mat = mat
        self._ctx = ctx

    # -- constructors ------------------------------------------------------

    @classmethod
    def empty(cls, ctx, n: int) -> "Vector":
        return cls(ctx.matrix_empty((int(n), 1)), ctx)

    @classmethod
    def from_indices(cls, ctx, n: int, indices) -> "Vector":
        indices = np.asarray(indices, dtype=np.int64)
        zeros = np.zeros(indices.size, dtype=np.int64)
        return cls(ctx.matrix_from_lists((int(n), 1), indices, zeros), ctx)

    @classmethod
    def from_dense(cls, ctx, dense) -> "Vector":
        dense = np.asarray(dense).astype(bool).ravel()
        return cls.from_indices(ctx, dense.size, np.nonzero(dense)[0])

    # -- introspection ---------------------------------------------------

    @property
    def size(self) -> int:
        return self._mat.nrows

    @property
    def nnz(self) -> int:
        return self._mat.nnz

    @property
    def context(self):
        return self._ctx

    def to_indices(self) -> np.ndarray:
        """Support of the vector, sorted ascending."""
        rows, _ = self._mat.to_arrays()
        return rows

    def to_list(self) -> list[int]:
        return self.to_indices().tolist()

    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.size, dtype=bool)
        idx = self.to_indices()
        if idx.size:
            out[idx] = True
        return out

    def get(self, i: int) -> bool:
        return self._mat.get(i, 0)

    def __contains__(self, i: int) -> bool:
        return self.get(int(i))

    def __iter__(self) -> Iterator[int]:
        return iter(self.to_list())

    def __len__(self) -> int:
        return self.nnz

    def __bool__(self) -> bool:
        return self.nnz > 0

    def dup(self) -> "Vector":
        return Vector(self._mat.dup(), self._ctx)

    def free(self) -> None:
        self._mat.free()

    # -- operations ------------------------------------------------------

    def _check_peer(self, other: "Vector", op: str) -> None:
        if not isinstance(other, Vector):
            raise InvalidArgumentError(f"{op}: expected Vector")
        if other._ctx is not self._ctx:
            raise InvalidArgumentError(f"{op}: vectors from different contexts")

    def ewise_add(self, other: "Vector") -> "Vector":
        """Element-wise OR."""
        self._check_peer(other, "ewise_add")
        return Vector(self._mat.ewise_add(other._mat), self._ctx)

    def __or__(self, other: "Vector") -> "Vector":
        return self.ewise_add(other)

    def ewise_mult(self, other: "Vector") -> "Vector":
        """Element-wise AND (support intersection)."""
        self._check_peer(other, "ewise_mult")
        return Vector(self._mat.ewise_mult(other._mat), self._ctx)

    def __and__(self, other: "Vector") -> "Vector":
        return self.ewise_mult(other)

    def dot(self, other: "Vector") -> bool:
        """Boolean dot product: do the supports intersect."""
        self._check_peer(other, "dot")
        meet = self.ewise_mult(other)
        try:
            return meet.nnz > 0
        finally:
            meet.free()

    def vxm(self, matrix) -> "Vector":
        """Row-vector × matrix: reachability step ``vᵀ · M``.

        Implemented as ``(Mᵀ · v)`` to keep the vector a column.
        """
        if matrix.context is not self._ctx:
            raise InvalidArgumentError("vxm: operands from different contexts")
        mt = matrix.transpose()
        try:
            out = mt.mxm(self._mat)
        finally:
            mt.free()
        return Vector(out, self._ctx)

    def mxv(self, matrix) -> "Vector":
        """Matrix × column-vector: ``M · v``."""
        if matrix.context is not self._ctx:
            raise InvalidArgumentError("mxv: operands from different contexts")
        return Vector(matrix.mxm(self._mat), self._ctx)

    def reduce(self) -> bool:
        """OR-reduce: does the vector have any true entry."""
        return self.nnz > 0

    def equals(self, other: "Vector") -> bool:
        self._check_peer(other, "equals")
        return self._mat.equals(other._mat)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        try:
            return f"Vector(n={self.size}, nnz={self.nnz})"
        except InvalidStateError:
            return "Vector(<freed>)"

"""Stable on-disk container for the boolean matrix formats.

One container file holds one matrix: a fixed little-endian header
(format tag, shape, nnz), an array table (name, dtype, offset, length,
CRC32 per array), and the format's buffers written **verbatim** — the
same bytes :class:`~repro.formats.csr.BoolCsr` et al. hold in memory.
Because the payload is the in-memory layout, loading is either a single
contiguous read (sparse formats) or — for
:class:`~repro.formats.bitmatrix.BitMatrix` — a read-only
:func:`numpy.memmap` view: the word array is *mapped*, not copied, so a
multi-GiB bit snapshot opens in microseconds and pages in lazily.  This
is the pyGinkgo/Bit-GraphBLAS argument applied to disk: persist the
packed representation byte-for-byte and hand the buffer back without
repacking.

Layout (all integers little-endian)::

    header   48 B   magic "RPROSTR1", container version, format tag,
                    array count, nrows, ncols, nnz, header CRC32
    table    48 B   per array: name, dtype code, payload CRC32,
                    absolute offset (64-aligned), element count, bytes
    payload         raw array bytes at their offsets

The header CRC covers the header (with the CRC field zeroed) plus the
whole array table, so a truncated or bit-flipped index is detected on
every open.  Payload CRCs are checked on load for the sparse formats
(they are copied into the heap anyway); the mmap path skips them by
default to stay zero-copy — ``python -m repro store verify`` (and
:func:`verify_container`) checks every byte.

Writes are atomic: the container is assembled in a ``*.tmp`` sibling,
fsynced, and renamed over the destination.
"""

from __future__ import annotations

import os
import struct
import zlib
from pathlib import Path

import numpy as np

from repro.errors import InvalidArgumentError, StoreCorruptError
from repro.formats.bitmatrix import BitMatrix, _words_per_row
from repro.formats.coo import BoolCoo
from repro.formats.csr import BoolCsr
from repro.formats.dcsr import BoolDcsr
from repro.formats.valcsr import ValCsr

MAGIC = b"RPROSTR1"
CONTAINER_VERSION = 1

#: File suffix for matrix containers inside a volume.
CONTAINER_SUFFIX = ".rpc"

_HEADER = struct.Struct("<8sHHHHQQQI4x")  # 48 bytes
_ENTRY = struct.Struct("<16sHHIQQQ")      # 48 bytes
_ALIGN = 64

FORMAT_TAGS = {"coo": 1, "csr": 2, "dcsr": 3, "bit": 4, "valcsr": 5}
_TAG_TO_KIND = {v: k for k, v in FORMAT_TAGS.items()}


def fsync_dir(path: str | Path) -> None:
    """fsync a directory so a just-renamed entry survives power loss.

    ``os.replace`` makes a rename atomic but not durable: the new
    directory entry lives in the parent's metadata, which needs its own
    fsync.  Best-effort — some filesystems refuse fsync on directories,
    and a refusal must not fail the write that already landed.
    """
    try:
        fd = os.open(path, os.O_RDONLY | getattr(os, "O_DIRECTORY", 0))
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)

#: dtype code <-> little-endian dtype string.
_DTYPE_CODES = {
    1: "<u4",
    2: "<i8",
    3: "<u8",
    4: "<f4",
    5: "<f8",
    6: "<i4",
    7: "|u1",
}
_CODE_BY_DTYPE = {np.dtype(s): c for c, s in _DTYPE_CODES.items()}


def _format_arrays(m) -> tuple[str, list[tuple[str, np.ndarray]]]:
    """(format kind, ordered named arrays) for a format object."""
    if isinstance(m, BitMatrix):
        return "bit", [("words", m.words.reshape(-1))]
    if isinstance(m, BoolCsr):
        return "csr", [("rowptr", m.rowptr), ("cols", m.cols)]
    if isinstance(m, BoolCoo):
        return "coo", [("rows", m.rows), ("cols", m.cols)]
    if isinstance(m, BoolDcsr):
        return "dcsr", [
            ("active_rows", m.active_rows),
            ("rowptr", m.rowptr),
            ("cols", m.cols),
        ]
    if isinstance(m, ValCsr):
        return "valcsr", [
            ("rowptr", m.rowptr),
            ("cols", m.cols),
            ("values", m.values),
        ]
    raise InvalidArgumentError(
        f"no container serializer for {type(m).__name__}"
    )


def _le(arr: np.ndarray) -> np.ndarray:
    """Contiguous little-endian view/copy of ``arr``."""
    arr = np.ascontiguousarray(arr)
    if arr.dtype.byteorder == ">":
        arr = arr.astype(arr.dtype.newbyteorder("<"))
    return arr


def dump_matrix(m, path: str | Path) -> dict:
    """Write one format object to ``path`` atomically; returns its info.

    The buffers are written verbatim (little-endian), so for
    :class:`BitMatrix` the container payload is byte-identical to the
    in-memory word array — including the zero padding words past
    ``ncols`` — which is what makes the mmap load a true zero-copy.
    """
    kind, arrays = _format_arrays(m)
    path = Path(path)

    entries = []
    payload_offset = _HEADER.size + _ENTRY.size * len(arrays)
    blobs = []
    for name, arr in arrays:
        arr = _le(arr)
        code = _CODE_BY_DTYPE.get(arr.dtype)
        if code is None:
            raise InvalidArgumentError(
                f"array {name!r} has unsupported dtype {arr.dtype}"
            )
        payload_offset = -(-payload_offset // _ALIGN) * _ALIGN
        blob = arr.tobytes()
        entries.append(
            (name.encode("ascii"), code, zlib.crc32(blob), payload_offset,
             arr.size, len(blob))
        )
        blobs.append((payload_offset, blob))
        payload_offset += len(blob)

    table = b"".join(
        _ENTRY.pack(name.ljust(16, b"\0"), code, 0, crc, off, count, nbytes)
        for name, code, crc, off, count, nbytes in entries
    )
    tag = FORMAT_TAGS[kind]
    header_zeroed = _HEADER.pack(
        MAGIC, CONTAINER_VERSION, tag, len(arrays), 0,
        m.nrows, m.ncols, m.nnz, 0
    )
    header_crc = zlib.crc32(header_zeroed + table)
    header = _HEADER.pack(
        MAGIC, CONTAINER_VERSION, tag, len(arrays), 0,
        m.nrows, m.ncols, m.nnz, header_crc
    )

    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as f:
        f.write(header)
        f.write(table)
        pos = _HEADER.size + len(table)
        for off, blob in blobs:
            if off > pos:
                f.write(b"\0" * (off - pos))
            f.write(blob)
            pos = off + len(blob)
        f.flush()
        os.fsync(f.fileno())
    os.replace(tmp, path)
    fsync_dir(path.parent)
    return {
        "kind": kind,
        "shape": (m.nrows, m.ncols),
        "nnz": m.nnz,
        "bytes": pos,
        "arrays": [name for name, _ in arrays],
    }


def _read_index(path: Path) -> tuple[dict, list[dict]]:
    """Parse and CRC-check the header + array table of a container."""
    with open(path, "rb") as f:
        header = f.read(_HEADER.size)
        if len(header) != _HEADER.size:
            raise StoreCorruptError(f"{path}: truncated header")
        magic, version, tag, narrays, _, nrows, ncols, nnz, crc = _HEADER.unpack(
            header
        )
        if magic != MAGIC:
            raise StoreCorruptError(f"{path}: bad magic {magic!r}")
        if version != CONTAINER_VERSION:
            raise StoreCorruptError(
                f"{path}: container version {version} (supported: "
                f"{CONTAINER_VERSION})"
            )
        table = f.read(_ENTRY.size * narrays)
    if len(table) != _ENTRY.size * narrays:
        raise StoreCorruptError(f"{path}: truncated array table")
    header_zeroed = _HEADER.pack(
        MAGIC, version, tag, narrays, 0, nrows, ncols, nnz, 0
    )
    if zlib.crc32(header_zeroed + table) != crc:
        raise StoreCorruptError(f"{path}: header checksum mismatch")
    kind = _TAG_TO_KIND.get(tag)
    if kind is None:
        raise StoreCorruptError(f"{path}: unknown format tag {tag}")

    arrays = []
    for i in range(narrays):
        name, code, _, acrc, off, count, nbytes = _ENTRY.unpack_from(
            table, i * _ENTRY.size
        )
        dtype_s = _DTYPE_CODES.get(code)
        if dtype_s is None:
            raise StoreCorruptError(f"{path}: unknown dtype code {code}")
        dtype = np.dtype(dtype_s)
        if nbytes != count * dtype.itemsize:
            raise StoreCorruptError(
                f"{path}: array {name!r} length/byte-count mismatch"
            )
        arrays.append(
            {
                "name": name.rstrip(b"\0").decode("ascii"),
                "dtype": dtype,
                "crc": acrc,
                "offset": off,
                "count": count,
                "nbytes": nbytes,
            }
        )
    info = {"kind": kind, "shape": (nrows, ncols), "nnz": nnz}
    return info, arrays


def _read_array(path: Path, entry: dict, *, verify: bool = True) -> np.ndarray:
    """Read one payload array into the heap, CRC-checking by default."""
    with open(path, "rb") as f:
        f.seek(entry["offset"])
        blob = f.read(entry["nbytes"])
    if len(blob) != entry["nbytes"]:
        raise StoreCorruptError(f"{path}: array {entry['name']!r} truncated")
    if verify and zlib.crc32(blob) != entry["crc"]:
        raise StoreCorruptError(
            f"{path}: array {entry['name']!r} checksum mismatch"
        )
    return np.frombuffer(blob, dtype=entry["dtype"]).copy()


def _check_mappable(path: Path, entry: dict) -> None:
    """Reject a mapping whose payload runs past EOF.

    ``np.memmap`` raises a bare ``ValueError`` on a short file; a
    truncated container is corruption and must surface as such.
    """
    if path.stat().st_size < entry["offset"] + entry["nbytes"]:
        raise StoreCorruptError(f"{path}: array {entry['name']!r} truncated")


def _map_array(path: Path, entry: dict) -> np.ndarray:
    """Read-only zero-copy view of one sparse index array.

    The CSR loader's analogue of :func:`_map_words`: the container
    payload is the in-memory layout verbatim, so ``rowptr``/``cols``
    can be handed back as read-only ``np.memmap`` views and N replica
    processes loading the same snapshot share the pages through the
    page cache instead of each holding a heap copy.  Empty arrays fall
    back to the heap — mmap of zero length is ill-defined.
    """
    if entry["count"] == 0:
        return np.zeros(0, dtype=entry["dtype"])
    _check_mappable(path, entry)
    return np.memmap(
        path,
        dtype=entry["dtype"],
        mode="r",
        offset=entry["offset"],
        shape=(entry["count"],),
    )


def _map_words(path: Path, entry: dict, shape: tuple[int, int]) -> np.ndarray:
    """Read-only zero-copy view of a container's word array.

    The returned array is an ``np.memmap`` (or an empty heap array for
    degenerate shapes — mmap of zero length is ill-defined).  It is
    deliberately read-only: snapshots are immutable; mutating a loaded
    snapshot must go through an edge delta instead.
    """
    if entry["count"] == 0:
        return np.zeros(shape, dtype=np.uint64)
    _check_mappable(path, entry)
    return np.memmap(
        path, dtype=np.uint64, mode="r", offset=entry["offset"], shape=shape
    )


def load_matrix(path: str | Path, *, mmap: bool = True, verify: bool = False):
    """Load a container back into its format object.

    ``bit`` containers return a :class:`BitMatrix` whose word array is
    a **read-only memmap view** when ``mmap=True`` (the default): no
    heap copy, lazily paged, suitable for arena-registration via
    :meth:`repro.gpu.memory.MemoryArena.adopt_external`.  ``csr``
    containers likewise map ``rowptr``/``cols`` read-only when
    ``mmap=True`` — the container payload is the in-memory layout, so
    :class:`BoolCsr` adopts the views uncopied and replica processes
    share the pages.  The remaining sparse formats are reconstructed
    from heap copies of their index arrays (payload CRCs always
    checked — the copy pass reads every byte anyway).  ``verify=True``
    forces a full payload checksum even on the mmap paths (reads the
    file once; the views stay zero-copy).
    """
    path = Path(path)
    info, entries = _read_index(path)
    kind = info["kind"]
    shape = info["shape"]
    by_name = {e["name"]: e for e in entries}

    def arr(name: str, check: bool = True) -> np.ndarray:
        entry = by_name.get(name)
        if entry is None:
            raise StoreCorruptError(f"{path}: missing array {name!r}")
        return _read_array(path, entry, verify=check)

    if kind == "bit":
        entry = by_name.get("words")
        if entry is None:
            raise StoreCorruptError(f"{path}: missing array 'words'")
        nrows, ncols = shape
        wpr = _words_per_row(ncols)
        if entry["count"] != nrows * wpr:
            raise StoreCorruptError(
                f"{path}: word count {entry['count']} != {nrows}x{wpr}"
            )
        if mmap:
            if verify:
                _read_array(path, entry)  # checksum pass only
            words = _map_words(path, entry, (nrows, wpr))
        else:
            words = arr("words").reshape(nrows, wpr)
        return BitMatrix(shape, words)
    if kind == "csr":
        if mmap:
            for name in ("rowptr", "cols"):
                if name not in by_name:
                    raise StoreCorruptError(f"{path}: missing array {name!r}")
                if verify:
                    _read_array(path, by_name[name])  # checksum pass only
            return BoolCsr(
                shape,
                _map_array(path, by_name["rowptr"]),
                _map_array(path, by_name["cols"]),
            )
        return BoolCsr(shape, arr("rowptr"), arr("cols"))
    if kind == "coo":
        return BoolCoo(shape, arr("rows"), arr("cols"))
    if kind == "dcsr":
        return BoolDcsr(shape, arr("active_rows"), arr("rowptr"), arr("cols"))
    if kind == "valcsr":
        return ValCsr(shape, arr("rowptr"), arr("cols"), arr("values"))
    raise StoreCorruptError(f"{path}: unknown kind {kind!r}")  # pragma: no cover


def container_info(path: str | Path) -> dict:
    """Header/table summary without touching the payload."""
    path = Path(path)
    info, entries = _read_index(path)
    return {
        **info,
        "path": str(path),
        "file_bytes": path.stat().st_size,
        "arrays": [
            {"name": e["name"], "dtype": str(e["dtype"]), "count": e["count"]}
            for e in entries
        ],
    }


def verify_container(path: str | Path) -> dict:
    """Full integrity check: header, table, and every payload CRC.

    Returns :func:`container_info`'s summary on success; raises
    :class:`~repro.errors.StoreCorruptError` on the first mismatch.
    The loaded matrix is also structurally validated (``validate()``),
    so a container whose bytes are intact but whose invariants are
    broken (unsorted CSR, set padding bits) fails too.
    """
    path = Path(path)
    info, entries = _read_index(path)
    for entry in entries:
        _read_array(path, entry, verify=True)
    m = load_matrix(path, mmap=False)
    m.validate()
    if m.nnz != info["nnz"]:
        raise StoreCorruptError(
            f"{path}: header nnz {info['nnz']} != payload nnz {m.nnz}"
        )
    return container_info(path)

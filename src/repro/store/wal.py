"""Append-only edge-delta log with CRC framing and torn-tail recovery.

A :class:`WriteAheadLog` records add/remove edge batches for one graph
volume.  The durability contract mirrors the classic redo-log design:

* every record is framed with a fixed header carrying its own CRC32, so
  a reader can tell "valid record", "torn tail" (partial final write —
  expected after a crash) and "corruption" (bad bytes *before* the last
  committed point — a real integrity failure) apart;
* a transaction is one or more ``delta`` records followed by a single
  ``commit`` marker; the file is fsynced once per transaction, after
  the commit marker is in the OS buffer;
* recovery replays records strictly up to the last complete commit
  marker and truncates everything after it.  A crash mid-append
  therefore loses at most the uncommitted transaction — never a
  committed one, and never the snapshot.

Record framing (little-endian)::

    magic    4 B   "RWAL"
    kind     1 B   1 = edge delta, 2 = commit marker
    op       1 B   delta: 1 = add, 2 = remove; commit: 0
    reserved 2 B
    version  8 B   graph version this record produces
    length   4 B   payload byte count (0 for commit)
    crc      4 B   CRC32 over (kind, op, version, payload)

Delta payload::

    label_len  2 B    label bytes  (utf-8)
    count      4 B    edge pairs
    edges      count x 2 x u32  (row, col), little-endian

The ``version`` stamped on a commit marker is the graph version after
applying every delta in its transaction; replay returns it so the
volume can continue numbering from there.
"""

from __future__ import annotations

import os
import struct
import warnings
import zlib
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.errors import InvalidArgumentError, StoreCorruptError

WAL_MAGIC = b"RWAL"

_FRAME = struct.Struct("<4sBBHQII")  # 24 bytes

KIND_DELTA = 1
KIND_COMMIT = 2

OP_ADD = 1
OP_REMOVE = 2
_OP_NAMES = {OP_ADD: "add", OP_REMOVE: "remove"}


@dataclass(frozen=True)
class EdgeDelta:
    """One applied edge batch: ``op`` over ``edges`` of graph ``label``."""

    op: str
    label: str
    edges: np.ndarray  # (count, 2) uint32
    version: int

    @property
    def count(self) -> int:
        return int(self.edges.shape[0])


def _crc(kind: int, op: int, version: int, payload: bytes) -> int:
    return zlib.crc32(bytes((kind, op)) + struct.pack("<Q", version) + payload)


def _delta_payload(label: str, edges: np.ndarray) -> bytes:
    raw = label.encode("utf-8")
    if len(raw) > 0xFFFF:
        raise InvalidArgumentError("graph label too long for WAL record")
    body = np.ascontiguousarray(edges, dtype="<u4")
    if body.ndim != 2 or body.shape[1] != 2:
        raise InvalidArgumentError("edges must have shape (count, 2)")
    return (
        struct.pack("<HI", len(raw), body.shape[0]) + raw + body.tobytes()
    )


def _valid_frames_after(data: bytes, start: int) -> tuple[int, int]:
    """Count structurally valid (delta, commit) frames after ``start``.

    Classifies damage at ``start``.  One append is one delta + one
    commit in a single ``write`` + ``fsync``, and real disks do not
    order sectors within a write: a crash can persist the final
    transaction's commit frame while tearing its delta.  So a lone
    valid commit past the damage is still consistent with a torn tail.
    Anything more — a valid delta, or a second commit — can only have
    been written after the damaged bytes were fsynced as part of a
    committed transaction, which makes the damage corruption.
    """
    deltas = commits = 0
    idx = data.find(WAL_MAGIC, start + 1)
    while idx != -1:
        frame = data[idx : idx + _FRAME.size]
        if len(frame) == _FRAME.size:
            _, kind, op_code, _, version, length, crc = _FRAME.unpack(frame)
            payload = data[idx + _FRAME.size : idx + _FRAME.size + length]
            if (
                len(payload) == length
                and _crc(kind, op_code, version, payload) == crc
            ):
                if kind == KIND_COMMIT:
                    commits += 1
                elif kind == KIND_DELTA:
                    deltas += 1
        idx = data.find(WAL_MAGIC, idx + 1)
    return deltas, commits


def encode_transaction(op: str, label: str, edges, *, version: int) -> bytes:
    """Serialise one committed transaction: a delta frame + its commit.

    This byte sequence is exactly what :meth:`WriteAheadLog.append`
    writes — and, verbatim, the payload of a replication ``frames``
    message (:mod:`repro.cluster`): the CRC framing on the wire is the
    CRC framing on disk, so followers validate shipped transactions
    with the same checks recovery applies to the local log.
    """
    op_code = {"add": OP_ADD, "remove": OP_REMOVE}.get(op)
    if op_code is None:
        raise InvalidArgumentError(f"unknown WAL op {op!r}")
    payload = _delta_payload(label, np.asarray(edges))
    delta = _FRAME.pack(
        WAL_MAGIC, KIND_DELTA, op_code, 0, version, len(payload),
        _crc(KIND_DELTA, op_code, version, payload),
    ) + payload
    commit = _FRAME.pack(
        WAL_MAGIC, KIND_COMMIT, 0, 0, version, 0,
        _crc(KIND_COMMIT, 0, version, b""),
    )
    return delta + commit


def decode_transaction(
    data: bytes, *, where: str = "wire",
) -> tuple[list[EdgeDelta], int]:
    """Parse one complete transaction, CRC-checking every frame.

    The inverse of :func:`encode_transaction`.  Unlike
    :meth:`WriteAheadLog.replay` there is no torn-tail leniency: the
    caller claims ``data`` holds exactly one committed transaction, so
    *any* damage — bad magic, checksum mismatch, a missing commit
    marker, bytes past it — raises
    :class:`~repro.errors.StoreCorruptError`.  A replication follower
    maps that to "drop the connection and re-request from the last
    applied version".  Returns ``(deltas, commit_version)``.
    """
    deltas: list[EdgeDelta] = []
    pos = 0
    while pos < len(data):
        frame = data[pos : pos + _FRAME.size]
        if len(frame) < _FRAME.size:
            raise StoreCorruptError(f"{where}: truncated frame header")
        magic, kind, op_code, _, version, length, crc = _FRAME.unpack(frame)
        if magic != WAL_MAGIC:
            raise StoreCorruptError(f"{where}: bad record magic")
        payload = data[pos + _FRAME.size : pos + _FRAME.size + length]
        if len(payload) < length:
            raise StoreCorruptError(f"{where}: truncated record payload")
        if _crc(kind, op_code, version, payload) != crc:
            raise StoreCorruptError(f"{where}: record checksum mismatch")
        pos += _FRAME.size + length
        if kind == KIND_DELTA:
            op = _OP_NAMES.get(op_code)
            if op is None:
                raise StoreCorruptError(f"{where}: unknown delta op {op_code}")
            label, edges = _parse_delta_payload(payload, where)
            deltas.append(EdgeDelta(op, label, edges, version))
        elif kind == KIND_COMMIT:
            if pos != len(data):
                raise StoreCorruptError(f"{where}: bytes past the commit marker")
            return deltas, version
        else:
            raise StoreCorruptError(f"{where}: unknown record kind {kind}")
    raise StoreCorruptError(f"{where}: transaction without a commit marker")


def _parse_delta_payload(payload: bytes, where: str) -> tuple[str, np.ndarray]:
    if len(payload) < 6:
        raise StoreCorruptError(f"{where}: delta payload too short")
    label_len, count = struct.unpack_from("<HI", payload)
    need = 6 + label_len + count * 8
    if len(payload) != need:
        raise StoreCorruptError(
            f"{where}: delta payload {len(payload)} B, framed for {need} B"
        )
    label = payload[6 : 6 + label_len].decode("utf-8")
    edges = (
        np.frombuffer(payload, dtype="<u4", count=count * 2, offset=6 + label_len)
        .reshape(count, 2)
        .astype(np.uint32, copy=True)
    )
    return label, edges


class WriteAheadLog:
    """Append/replay access to one volume's ``wal.log``.

    Instances are not thread-safe; the owning :class:`GraphVolume`
    serialises access under its own lock.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._file = None

    # -- append side -------------------------------------------------------

    def _handle(self):
        if self._file is None or self._file.closed:
            self._file = open(self.path, "ab")
        return self._file

    def append(self, op: str, label: str, edges, *, version: int) -> None:
        """Append one committed edge-delta transaction and fsync.

        Writes a delta record followed by its commit marker; both land
        in one ``write`` + ``fsync`` pair, so the commit marker is never
        durable without its delta.
        """
        f = self._handle()
        f.write(encode_transaction(op, label, edges, version=version))
        f.flush()
        os.fsync(f.fileno())

    def close(self) -> None:
        if self._file is not None and not self._file.closed:
            self._file.close()
        self._file = None

    # -- replay side -------------------------------------------------------

    def replay(self, *, repair: bool = True) -> tuple[list[EdgeDelta], int]:
        """Read back every committed delta; returns ``(deltas, version)``.

        ``version`` is the last committed graph version (0 when the log
        is empty).  A torn tail — a partial record, or complete delta
        records with no commit marker — is truncated away when
        ``repair=True`` (the default) or merely ignored otherwise.
        Malformed bytes *before* the last committed transaction raise
        :class:`~repro.errors.StoreCorruptError`: those were fsynced as
        part of a committed transaction, so damage there is corruption,
        not a crash artefact.  The two are told apart by looking past
        the damage — a valid *delta* record, or more than one commit
        marker, after a bad record can only mean mid-log corruption.  A
        lone valid commit past the damage is still a crash artefact
        (sectors within one ``write`` persist in any order, so the
        final transaction's commit can survive a tear of its delta) and
        is truncated away with a :class:`RuntimeWarning`.
        """
        if not self.path.exists():
            return [], 0
        data = self.path.read_bytes()

        committed: list[EdgeDelta] = []
        pending: list[EdgeDelta] = []
        last_version = 0
        committed_end = 0  # byte offset just past the last commit marker
        pos = 0
        torn = False
        while pos < len(data):
            frame = data[pos : pos + _FRAME.size]
            if len(frame) < _FRAME.size:
                torn = True
                break
            magic, kind, op_code, _, version, length, crc = _FRAME.unpack(frame)
            where = f"{self.path} @ {pos}"
            payload = data[pos + _FRAME.size : pos + _FRAME.size + length]
            bad = None
            if magic != WAL_MAGIC:
                bad = "bad record magic"
            elif len(payload) < length:
                bad = "truncated record payload"
            elif _crc(kind, op_code, version, payload) != crc:
                bad = "record checksum mismatch"
            if bad is not None:
                deltas_after, commits_after = _valid_frames_after(data, pos)
                if deltas_after or commits_after > 1:
                    raise StoreCorruptError(
                        f"{where}: {bad} before later committed records"
                    )
                if commits_after:
                    # The final transaction's commit sectors persisted
                    # but its delta tore; the commit is unusable without
                    # its delta, so the whole tail is truncated.
                    warnings.warn(
                        f"{where}: {bad} with an orphaned trailing commit "
                        f"marker; treating as a torn final transaction and "
                        f"recovering to the previous commit",
                        RuntimeWarning,
                        stacklevel=3,
                    )
                torn = True
                break
            if kind == KIND_DELTA:
                op = _OP_NAMES.get(op_code)
                if op is None:
                    raise StoreCorruptError(f"{where}: unknown delta op {op_code}")
                label, edges = _parse_delta_payload(payload, where)
                pending.append(EdgeDelta(op, label, edges, version))
            elif kind == KIND_COMMIT:
                committed.extend(pending)
                pending.clear()
                last_version = version
                committed_end = pos + _FRAME.size + length
            else:
                raise StoreCorruptError(f"{where}: unknown record kind {kind}")
            pos += _FRAME.size + length

        if (torn or pending) and repair and committed_end < len(data):
            self.close()
            with open(self.path, "r+b") as f:
                f.truncate(committed_end)
                f.flush()
                os.fsync(f.fileno())
        return committed, last_version

    def reset(self) -> None:
        """Empty the log (after its deltas were folded into a snapshot)."""
        self.close()
        with open(self.path, "wb") as f:
            f.flush()
            os.fsync(f.fileno())

    def size(self) -> int:
        return self.path.stat().st_size if self.path.exists() else 0


class WalCursor:
    """Incremental reader over a live ``wal.log``: the shipper's tail.

    Tracks a byte :attr:`offset` into the file and, on each
    :meth:`poll`, returns every *complete committed* transaction that
    appeared since — each as ``(version, raw_bytes)`` where
    ``raw_bytes`` is the transaction's frames verbatim (ready to ship;
    see :func:`encode_transaction`).  The cursor never advances past an
    incomplete or damaged tail: a partial final write simply waits for
    the next poll, exactly like recovery's torn-tail rule.

    A *reset* log (a snapshot folded it away) rewinds the cursor to
    byte 0 and bumps :attr:`resets`.  Shrinking is not the only tell:
    a reset log that regrew to at least the old offset would read as a
    plain append, so the cursor also keeps a checksum of the last
    commit frame it consumed and re-verifies those bytes on every poll
    — new content at an old offset cannot impersonate the old commit
    (versions differ, and the frame CRC covers the version).  Re-read
    transactions after a rewind carry versions at or below what the
    caller already shipped, and it is the caller's job to filter those
    and to detect version gaps (a reset that discarded not-yet-polled
    transactions).

    Single-threaded, like :class:`WriteAheadLog`: one shipper thread
    owns one cursor.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.offset = 0
        self.resets = 0
        self._tail_sig = 0  # crc32 of the last consumed commit frame

    def _rewind(self) -> None:
        self.offset = 0
        self._tail_sig = 0
        self.resets += 1

    def poll(self) -> list[tuple[int, bytes]]:
        """Committed transactions newly visible since the last poll."""
        try:
            size = self.path.stat().st_size
        except FileNotFoundError:
            size = 0
        if size < self.offset:
            self._rewind()
        elif self.offset:
            with open(self.path, "rb") as f:
                f.seek(self.offset - _FRAME.size)
                tail = f.read(_FRAME.size)
            if zlib.crc32(tail) != self._tail_sig:
                self._rewind()
        if size == self.offset:
            return []
        with open(self.path, "rb") as f:
            f.seek(self.offset)
            data = f.read()

        out: list[tuple[int, bytes]] = []
        txn_start = 0  # within `data`: first byte of the open transaction
        pos = 0
        while pos < len(data):
            frame = data[pos : pos + _FRAME.size]
            if len(frame) < _FRAME.size:
                break
            magic, kind, op_code, _, version, length, crc = _FRAME.unpack(frame)
            payload = data[pos + _FRAME.size : pos + _FRAME.size + length]
            if (
                magic != WAL_MAGIC
                or len(payload) < length
                or _crc(kind, op_code, version, payload) != crc
            ):
                # Torn (or, mid-log, damaged) tail: stop here and let the
                # next poll — after the writer finishes, or recovery
                # truncates — try again from the same offset.
                break
            pos += _FRAME.size + length
            if kind == KIND_COMMIT:
                out.append((version, bytes(data[txn_start:pos])))
                txn_start = pos
                self._tail_sig = zlib.crc32(frame)
        self.offset += txn_start
        return out

"""Per-graph on-disk volume: snapshot generations + edge-delta WAL.

A :class:`GraphVolume` is one directory per named graph::

    <root>/volumes/<name>/
        volume.json                   identity + store format version
        wal.log                       append-only committed edge deltas
        snapshots/
            gen-000001/
                manifest.json         label -> container map (commit marker)
                lab000.csr.rpc        sparse container (always present)
                lab000.bit.rpc        bit container (dense labels only)
            gen-000002/ ...

Generations are immutable: a snapshot is assembled in a temp directory
and renamed into place only after every container is fsynced, with
``manifest.json`` (itself written via temp + rename) doubling as the
generation's commit marker — a ``gen-*`` directory without a manifest
is an aborted write and is ignored.  The newest committed generation
plus the committed suffix of ``wal.log`` is the graph's current state;
:meth:`GraphVolume.load` replays only deltas *newer* than the snapshot
version, so a crash between "snapshot renamed" and "log reset" (both
orders of which the recovery path must tolerate) never double-applies.

Labels whose density makes them bit-kernel residents also get a
``.bit.rpc`` container; on load these come back as read-only
``np.memmap`` views (see :mod:`repro.store.container`) — but only for
labels untouched by log deltas, since a delta invalidates the packed
snapshot bytes.
"""

from __future__ import annotations

import json
import os
import shutil
from dataclasses import dataclass, field
from pathlib import Path

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX
    fcntl = None

import numpy as np

from repro.errors import (
    IndexOutOfBoundsError,
    InvalidArgumentError,
    StoreCorruptError,
    StoreError,
)
from repro.formats.bitmatrix import BitMatrix
from repro.formats.csr import BoolCsr
from repro.graph import LabeledGraph
from repro.store.container import (
    container_info,
    dump_matrix,
    fsync_dir,
    load_matrix,
    verify_container,
)
from repro.store.wal import EdgeDelta, WriteAheadLog

STORE_VERSION = 1

#: Default density at which a label's snapshot also gets a bit container
#: (matches the hybrid dispatcher's analytic crossover).
BIT_SNAPSHOT_DENSITY = 0.02

_GEN_PREFIX = "gen-"

#: Advisory writer-lock file inside a volume directory.
_LOCK_FILE = ".lock"


def _atomic_json(path: Path, payload: dict) -> None:
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")
        f.flush()
        os.fsync(f.fileno())
    os.replace(tmp, path)
    fsync_dir(path.parent)


def apply_deltas(graph: LabeledGraph, deltas) -> set:
    """Apply edge deltas to ``graph`` in place; returns touched labels.

    Edge sets are treated as sets of ``(u, v)`` pairs: ``add`` unions,
    ``remove`` differences, and the label's edge list is rewritten in
    sorted canonical order.  Out-of-range endpoints raise — a delta can
    never grow the vertex set.
    """
    touched: dict[str, set] = {}
    n = graph.n
    for delta in deltas:
        edges = touched.get(delta.label)
        if edges is None:
            edges = {(int(u), int(v)) for u, v in graph.edges.get(delta.label, ())}
            touched[delta.label] = edges
        batch = {(int(u), int(v)) for u, v in delta.edges}
        for u, v in batch:
            if not 0 <= u < n:
                raise IndexOutOfBoundsError("row", u, n)
            if not 0 <= v < n:
                raise IndexOutOfBoundsError("column", v, n)
        if delta.op == "add":
            edges |= batch
        elif delta.op == "remove":
            edges -= batch
        else:  # replay already validated ops; belt and braces
            raise InvalidArgumentError(f"unknown delta op {delta.op!r}")
    for label, edges in touched.items():
        graph.edges[label] = sorted(edges)
    return set(touched)


@dataclass
class RestoredGraph:
    """What :meth:`GraphVolume.load` hands back to the service tier."""

    graph: LabeledGraph
    version: int
    generation: int
    #: labels whose snapshot bit container is still valid (no log deltas
    #: touched them) -> container path, eligible for zero-copy mmap.
    bit_paths: dict = field(default_factory=dict)
    deltas_applied: int = 0


class GraphVolume:
    """On-disk home of one named graph.

    Single-writer: in-process mutations are serialised through the
    graph handle's lock, and *cross-process* writers are excluded by an
    advisory ``flock`` on the volume's ``.lock`` file, held for the
    lifetime of every ``writer=True`` instance.  Opening a second
    writer — e.g. ``python -m repro store compact`` against a volume a
    live service has attached — fails fast instead of resetting the WAL
    under the service's open append handle.  Readers (``ls``, ``info``,
    ``verify``) take no lock and never mutate the volume.
    """

    def __init__(self, path: str | Path, *, writer: bool = False):
        self.path = Path(path)
        self._meta = self._read_volume_meta()
        self._lock_file = None
        if writer:
            self._acquire_writer_lock()
        self.wal = WriteAheadLog(self.path / "wal.log")

    # -- lifecycle ---------------------------------------------------------

    @classmethod
    def create(
        cls, path: str | Path, name: str, *, writer: bool = True
    ) -> "GraphVolume":
        """Initialise an empty volume directory (idempotent).

        Creation implies write intent, so the instance holds the
        volume's writer lock unless ``writer=False``.
        """
        path = Path(path)
        (path / "snapshots").mkdir(parents=True, exist_ok=True)
        meta_path = path / "volume.json"
        if not meta_path.exists():
            _atomic_json(
                meta_path, {"store_version": STORE_VERSION, "name": name}
            )
        return cls(path, writer=writer)

    @classmethod
    def open(cls, path: str | Path, *, writer: bool = False) -> "GraphVolume":
        path = Path(path)
        if not (path / "volume.json").exists():
            raise StoreError(f"{path} is not a graph volume (no volume.json)")
        return cls(path, writer=writer)

    def _acquire_writer_lock(self) -> None:
        if fcntl is None:  # pragma: no cover - non-POSIX
            self._lock_file = True  # in-process guard only
            return
        f = open(self.path / _LOCK_FILE, "a+b")
        try:
            fcntl.flock(f.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            f.close()
            raise StoreError(
                f"{self.path}: volume is locked by another writer (a live "
                f"service, or a concurrent maintenance command); quiesce it "
                f"before compacting or repairing"
            ) from None
        self._lock_file = f

    @property
    def is_writer(self) -> bool:
        return self._lock_file is not None

    def _require_writer(self, what: str) -> None:
        if self._lock_file is None:
            raise StoreError(
                f"{self.path}: {what} requires the volume writer lock "
                f"(open with writer=True)"
            )

    def _read_volume_meta(self) -> dict:
        meta_path = self.path / "volume.json"
        if not meta_path.exists():
            raise StoreError(f"{self.path} is not a graph volume (no volume.json)")
        try:
            meta = json.loads(meta_path.read_text(encoding="utf-8"))
        except ValueError as exc:
            raise StoreCorruptError(f"{meta_path}: invalid JSON: {exc}") from exc
        version = meta.get("store_version")
        if version != STORE_VERSION:
            raise StoreCorruptError(
                f"{meta_path}: store version {version!r} "
                f"(supported: {STORE_VERSION})"
            )
        return meta

    @property
    def name(self) -> str:
        return self._meta.get("name", self.path.name)

    def close(self) -> None:
        self.wal.close()
        if self._lock_file not in (None, True):
            if fcntl is not None:
                fcntl.flock(self._lock_file.fileno(), fcntl.LOCK_UN)
            self._lock_file.close()
        self._lock_file = None

    # -- generations -------------------------------------------------------

    def _gen_dir(self, generation: int) -> Path:
        return self.path / "snapshots" / f"{_GEN_PREFIX}{generation:06d}"

    def generations(self) -> list[int]:
        """Committed generation numbers, ascending."""
        snap_root = self.path / "snapshots"
        found = []
        if snap_root.is_dir():
            for entry in snap_root.iterdir():
                if not entry.name.startswith(_GEN_PREFIX):
                    continue
                try:
                    gen = int(entry.name[len(_GEN_PREFIX):])
                except ValueError:
                    continue
                if (entry / "manifest.json").exists():
                    found.append(gen)
        return sorted(found)

    def latest_generation(self) -> int | None:
        gens = self.generations()
        return gens[-1] if gens else None

    def read_manifest(self, generation: int) -> dict:
        path = self._gen_dir(generation) / "manifest.json"
        try:
            manifest = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise StoreError(
                f"{self.path}: no committed generation {generation}"
            ) from None
        except ValueError as exc:
            raise StoreCorruptError(f"{path}: invalid JSON: {exc}") from exc
        for key in ("n", "version", "labels"):
            if key not in manifest:
                raise StoreCorruptError(f"{path}: manifest missing {key!r}")
        return manifest

    # -- snapshot write ----------------------------------------------------

    def write_snapshot(
        self,
        graph: LabeledGraph,
        *,
        version: int,
        bit_labels=None,
        bit_density: float = BIT_SNAPSHOT_DENSITY,
        reset_wal: bool = True,
    ) -> int:
        """Persist ``graph`` as the next immutable generation.

        Every label gets a sparse CSR container; labels in
        ``bit_labels`` (or, when that is None, labels at or above
        ``bit_density``) additionally get a bit container for zero-copy
        warm starts.  The generation directory is assembled under a
        temporary name and renamed into place after fsync, then the WAL
        is reset (its deltas are folded into the snapshot).
        """
        self._require_writer("write_snapshot")
        latest = self.latest_generation() or 0
        generation = latest + 1
        final_dir = self._gen_dir(generation)
        tmp_dir = final_dir.with_name("." + final_dir.name + ".tmp")
        if tmp_dir.exists():
            shutil.rmtree(tmp_dir)
        tmp_dir.mkdir(parents=True)

        n = graph.n
        labels_meta = []
        for i, label in enumerate(sorted(graph.edges)):
            pairs = graph.edges.get(label, [])
            if pairs:
                arr = np.asarray(pairs, dtype=np.int64)
                rows, cols = arr[:, 0], arr[:, 1]
            else:
                rows = cols = np.empty(0, dtype=np.int64)
            csr = BoolCsr.from_coo(rows, cols, (n, n))
            density = csr.nnz / (n * n) if n else 0.0
            want_bit = (
                label in bit_labels
                if bit_labels is not None
                else density >= bit_density
            )
            stem = f"lab{i:03d}"
            dump_matrix(csr, tmp_dir / f"{stem}.csr.rpc")
            if want_bit:
                dump_matrix(
                    BitMatrix.from_coo(rows, cols, (n, n)),
                    tmp_dir / f"{stem}.bit.rpc",
                )
            labels_meta.append(
                {
                    "label": label,
                    "nnz": csr.nnz,
                    "density": density,
                    "sparse": f"{stem}.csr.rpc",
                    "bit": f"{stem}.bit.rpc" if want_bit else None,
                }
            )

        _atomic_json(
            tmp_dir / "manifest.json",
            {
                "name": self.name,
                "n": n,
                "version": version,
                "generation": generation,
                "labels": labels_meta,
            },
        )
        os.replace(tmp_dir, final_dir)
        fsync_dir(final_dir.parent)
        if reset_wal:
            self.wal.reset()
        return generation

    # -- load / recovery ---------------------------------------------------

    def load_snapshot(
        self, *, generation: int | None = None, mmap: bool = True
    ) -> RestoredGraph:
        """Reconstruct one committed snapshot generation — no WAL replay.

        The replica bootstrap path (:mod:`repro.cluster`): a follower
        loads the newest generation (or the specific ``generation`` the
        primary named in its handoff), then catches up past the
        snapshot version from the *shipped* WAL stream rather than the
        local log.  With ``mmap=True`` the untouched bit containers
        come back as read-only memmap paths, so N follower processes on
        one host share those pages through the page cache.
        """
        if generation is None:
            generation = self.latest_generation()
            if generation is None:
                raise StoreError(
                    f"{self.path}: volume has no committed snapshot"
                )
        manifest = self.read_manifest(generation)
        n = int(manifest["n"])
        snapshot_version = int(manifest["version"])
        gen_dir = self._gen_dir(generation)

        graph = LabeledGraph(n=n)
        bit_paths: dict[str, Path] = {}
        for entry in manifest["labels"]:
            label = entry["label"]
            sparse = load_matrix(gen_dir / entry["sparse"], mmap=False)
            if sparse.shape != (n, n):
                raise StoreCorruptError(
                    f"{gen_dir / entry['sparse']}: shape {sparse.shape} "
                    f"!= graph ({n}, {n})"
                )
            rows, cols = sparse.to_coo_arrays()
            graph.edges[label] = list(zip(rows.tolist(), cols.tolist()))
            if mmap and entry.get("bit"):
                bit_paths[label] = gen_dir / entry["bit"]
        return RestoredGraph(
            graph=graph,
            version=snapshot_version,
            generation=generation,
            bit_paths=bit_paths,
        )

    def load(self, *, mmap: bool = True) -> RestoredGraph:
        """Reconstruct the current graph state from disk.

        Latest committed snapshot + committed WAL suffix; torn WAL tails
        are truncated (crash recovery).  Deltas at or below the snapshot
        version are skipped — they were folded into the snapshot by a
        compaction whose log reset did not survive the crash.

        Torn-tail truncation is a write, so a reader instance replays
        with ``repair=False`` (the tail is ignored, not repaired).
        """
        state = self.load_snapshot(mmap=mmap)
        deltas, wal_version = self.wal.replay(repair=self.is_writer)
        live = [d for d in deltas if d.version > state.version]
        touched = apply_deltas(state.graph, live)
        for label in touched:
            state.bit_paths.pop(label, None)
        state.version = max(state.version, wal_version)
        state.deltas_applied = len(live)
        return state

    def handoff(self) -> dict | None:
        """Bootstrap coordinates for a joining read replica.

        The primary answers a follower's hello with this: the newest
        committed generation and its snapshot version.  A follower
        already at or past ``snapshot_version`` streams the WAL suffix;
        one behind it first reloads the named generation from the
        shared volume directory (the catch-up state machine in
        docs/CLUSTER.md).  ``None`` when nothing has been persisted
        yet — there is no state to replicate from.
        """
        generation = self.latest_generation()
        if generation is None:
            return None
        manifest = self.read_manifest(generation)
        return {
            "generation": generation,
            "snapshot_version": int(manifest["version"]),
            "n": int(manifest["n"]),
        }

    def current_version(self) -> int:
        """Last committed graph version (snapshot or WAL, whichever is
        newer); 0 for a volume with neither."""
        generation = self.latest_generation()
        snapshot_version = (
            int(self.read_manifest(generation)["version"]) if generation else 0
        )
        _, wal_version = self.wal.replay(repair=False)
        return max(snapshot_version, wal_version)

    # -- mutation ----------------------------------------------------------

    def append_delta(self, op: str, label: str, edges, *, version: int) -> None:
        """Durably log one committed edge batch (fsynced before return)."""
        self._require_writer("append_delta")
        self.wal.append(op, label, edges, version=version)

    def compact(
        self,
        *,
        bit_density: float = BIT_SNAPSHOT_DENSITY,
        retain: int | None = None,
    ) -> int:
        """Fold the WAL into a fresh snapshot generation and reset it.

        Labels keep a bit container if the previous snapshot had one or
        their density now clears ``bit_density``.  With ``retain=N``,
        generations older than the newest N are pruned afterwards
        (:meth:`prune_generations`); the default keeps all.
        """
        self._require_writer("compact")
        state = self.load(mmap=False)
        manifest = self.read_manifest(state.generation)
        prev_bit = {e["label"] for e in manifest["labels"] if e.get("bit")}
        n = state.graph.n
        dense_now = {
            label
            for label, pairs in state.graph.edges.items()
            if n and len(set(pairs)) / (n * n) >= bit_density
        }
        generation = self.write_snapshot(
            state.graph,
            version=state.version,
            bit_labels=prev_bit | dense_now,
        )
        if retain is not None:
            self.prune_generations(retain=retain)
        return generation

    def prune_generations(self, *, retain: int) -> list[int]:
        """Delete committed generations older than the newest ``retain``.

        Snapshot GC: every generation is a *full* dump (never a delta
        chain), so nothing — no newer generation, no WAL record — ever
        references a pruned one; recovery only needs the newest
        generation plus the log suffix.  ``retain`` must be >= 1: the
        newest generation is the recovery point and is never pruned.
        Returns the pruned generation numbers, ascending.
        """
        self._require_writer("prune_generations")
        if retain < 1:
            raise InvalidArgumentError("retain must be >= 1")
        gens = self.generations()
        doomed = gens[:-retain]
        for gen in doomed:
            gen_dir = self._gen_dir(gen)
            # Drop the commit marker first: a crash mid-removal leaves a
            # marker-less directory, which every reader already ignores
            # as an aborted write.
            marker = gen_dir / "manifest.json"
            marker.unlink(missing_ok=True)
            fsync_dir(gen_dir)
            shutil.rmtree(gen_dir)
            fsync_dir(gen_dir.parent)
        return doomed

    # -- introspection -----------------------------------------------------

    def info(self) -> dict:
        generation = self.latest_generation()
        deltas, wal_version = self.wal.replay(repair=False)
        out = {
            "name": self.name,
            "path": str(self.path),
            "generations": self.generations(),
            "generation": generation,
            "wal_bytes": self.wal.size(),
            "wal_deltas": len(deltas),
            "wal_version": wal_version,
        }
        if generation is not None:
            manifest = self.read_manifest(generation)
            out.update(
                n=int(manifest["n"]),
                snapshot_version=int(manifest["version"]),
                version=max(int(manifest["version"]), wal_version),
                labels={
                    e["label"]: {
                        "nnz": e["nnz"],
                        "density": e["density"],
                        "bit": bool(e.get("bit")),
                    }
                    for e in manifest["labels"]
                },
            )
        return out

    def verify(self) -> dict:
        """Full integrity sweep: every container of every committed
        generation, plus a non-repairing WAL replay.  Raises
        :class:`~repro.errors.StoreCorruptError` on the first failure;
        returns a summary on success."""
        containers = 0
        for generation in self.generations():
            manifest = self.read_manifest(generation)
            gen_dir = self._gen_dir(generation)
            for entry in manifest["labels"]:
                for key in ("sparse", "bit"):
                    if entry.get(key):
                        info = verify_container(gen_dir / entry[key])
                        if info["shape"] != (manifest["n"], manifest["n"]):
                            raise StoreCorruptError(
                                f"{gen_dir / entry[key]}: shape {info['shape']} "
                                f"!= graph ({manifest['n']}, {manifest['n']})"
                            )
                        containers += 1
        deltas, wal_version = self.wal.replay(repair=False)
        return {
            "name": self.name,
            "generations": len(self.generations()),
            "containers": containers,
            "wal_deltas": len(deltas),
            "wal_version": wal_version,
            "ok": True,
        }


def volume_root(store_root: str | Path) -> Path:
    """Directory under which a store root keeps its graph volumes."""
    return Path(store_root) / "volumes"


def list_volumes(store_root: str | Path) -> list[GraphVolume]:
    """Every openable graph volume under ``store_root`` (sorted by name)."""
    root = volume_root(store_root)
    volumes = []
    if root.is_dir():
        for entry in sorted(root.iterdir()):
            if (entry / "volume.json").exists():
                volumes.append(GraphVolume.open(entry))
    return volumes


def container_summary(path: str | Path) -> dict:
    """CLI helper: :func:`container_info` re-exported at volume level."""
    return container_info(path)

"""repro.store — memory-mapped persistent graph storage.

On-disk layer for the service tier: stable little-endian containers for
every matrix format (:mod:`repro.store.container`), per-graph volumes
with immutable snapshot generations and a CRC-framed edge-delta WAL
(:mod:`repro.store.volume`, :mod:`repro.store.wal`), and a metadata
directory persisting autotune measurements
(:mod:`repro.store.metadata`).  ``python -m repro store
{ls,info,compact,verify}`` is the operator surface; full design notes
in ``docs/STORAGE.md``.
"""

from repro.store.container import (
    CONTAINER_SUFFIX,
    container_info,
    dump_matrix,
    load_matrix,
    verify_container,
)
from repro.store.metadata import (
    STORE_ENV,
    load_autotune,
    save_autotune,
    store_root_from_env,
)
from repro.store.volume import (
    BIT_SNAPSHOT_DENSITY,
    GraphVolume,
    RestoredGraph,
    apply_deltas,
    list_volumes,
    volume_root,
)
from repro.store.wal import EdgeDelta, WriteAheadLog

__all__ = [
    "BIT_SNAPSHOT_DENSITY",
    "CONTAINER_SUFFIX",
    "EdgeDelta",
    "GraphVolume",
    "RestoredGraph",
    "STORE_ENV",
    "WriteAheadLog",
    "apply_deltas",
    "container_info",
    "dump_matrix",
    "list_volumes",
    "load_autotune",
    "load_matrix",
    "save_autotune",
    "store_root_from_env",
    "verify_container",
    "volume_root",
]

"""``python -m repro store`` — operator CLI for the persistent store.

Subcommands::

    ls                      list graph volumes under the store root
    info NAME               one volume's generations, WAL state, labels
    compact NAME [--retain N]
                            fold the WAL into a new snapshot generation;
                            with --retain, prune all but the newest N
    verify [NAME ...]       full integrity sweep (all volumes by default)

The store root comes from ``--root`` or the ``REPRO_STORE`` environment
variable.  ``verify`` exits non-zero on the first corrupt container or
WAL record; CI runs it as a smoke step after the crash-recovery matrix.

``ls``/``info``/``verify`` are read-only and safe against a live
service.  ``compact`` takes the volume's advisory writer lock and fails
fast when a service (or another maintenance command) holds it — a WAL
reset under a live writer's append handle would silently drop deltas.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.errors import StoreError
from repro.store.metadata import STORE_ENV, store_root_from_env
from repro.store.volume import GraphVolume, list_volumes, volume_root


def _resolve_root(args) -> str:
    root = args.root or store_root_from_env()
    if root is None:
        raise StoreError(
            f"no store root: pass --root or set {STORE_ENV}"
        )
    return str(root)


def _open(root: str, name: str, *, writer: bool = False) -> GraphVolume:
    return GraphVolume.open(volume_root(root) / name, writer=writer)


def _emit(payload, as_json: bool) -> None:
    if as_json:
        print(json.dumps(payload, indent=2, sort_keys=True, default=str))
        return
    if isinstance(payload, list):
        for item in payload:
            _emit(item, False)
        return
    for key, value in payload.items():
        print(f"{key:18s} {value}")


def _ls(args) -> int:
    root = _resolve_root(args)
    volumes = list_volumes(root)
    if args.json:
        print(json.dumps([v.info() for v in volumes], indent=2, sort_keys=True))
        return 0
    if not volumes:
        print(f"(no volumes under {volume_root(root)})")
        return 0
    print(f"{'name':16s} {'gen':>4s} {'version':>8s} {'n':>8s} "
          f"{'wal':>10s} {'labels':>7s}")
    for vol in volumes:
        info = vol.info()
        print(
            f"{info['name']:16s} {info['generation'] or 0:4d} "
            f"{info.get('version', info['wal_version']):8d} "
            f"{info.get('n', 0):8d} "
            f"{info['wal_bytes']:9d}B {len(info.get('labels', {})):7d}"
        )
    return 0


def _info(args) -> int:
    vol = _open(_resolve_root(args), args.name)
    info = vol.info()
    if args.json:
        print(json.dumps(info, indent=2, sort_keys=True))
        return 0
    labels = info.pop("labels", {})
    generations = info.pop("generations", [])
    _emit(info, False)
    print(f"{'generations':18s} {', '.join(str(g) for g in generations) or '-'}")
    for label, meta in sorted(labels.items()):
        fmt = "csr+bit" if meta["bit"] else "csr"
        print(
            f"  label {label!r}: nnz={meta['nnz']} "
            f"density={meta['density']:.4g} [{fmt}]"
        )
    return 0


def _compact(args) -> int:
    # Writer open: folding the WAL resets it, which must never happen
    # under a live service's open append handle — the advisory volume
    # lock makes that a fast failure instead of silent delta loss.
    vol = _open(_resolve_root(args), args.name, writer=True)
    before = vol.info()
    generation = vol.compact(retain=args.retain)
    pruned = ""
    if args.retain is not None:
        kept = vol.generations()
        pruned = f"; retained {len(kept)} generation(s)"
    print(
        f"{vol.name}: folded {before['wal_deltas']} delta(s) "
        f"({before['wal_bytes']} WAL bytes) into generation "
        f"{generation}{pruned}"
    )
    return 0


def _verify(args) -> int:
    root = _resolve_root(args)
    if args.names:
        volumes = [_open(root, name) for name in args.names]
    else:
        volumes = list_volumes(root)
    failures = 0
    results = []
    for vol in volumes:
        try:
            summary = vol.verify()
        except StoreError as exc:
            failures += 1
            summary = {"name": vol.name, "ok": False, "error": str(exc)}
        results.append(summary)
        if not args.json:
            status = "ok" if summary.get("ok") else "CORRUPT"
            detail = (
                f"{summary.get('containers', 0)} container(s), "
                f"{summary.get('wal_deltas', 0)} WAL delta(s)"
                if summary.get("ok")
                else summary.get("error", "")
            )
            print(f"{vol.name:16s} {status:8s} {detail}")
    if args.json:
        print(json.dumps(results, indent=2, sort_keys=True))
    if not volumes and not args.json:
        print(f"(no volumes under {volume_root(root)})")
    return 1 if failures else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro store",
        description="Inspect and maintain the on-disk graph store.",
    )
    parser.add_argument(
        "--root",
        default=None,
        help=f"store root directory (default: ${STORE_ENV})",
    )
    parser.add_argument("--json", action="store_true", help="JSON output")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("ls", help="list graph volumes")
    p_info = sub.add_parser("info", help="show one volume")
    p_info.add_argument("name")
    p_compact = sub.add_parser("compact", help="fold the WAL into a snapshot")
    p_compact.add_argument("name")
    p_compact.add_argument(
        "--retain",
        type=int,
        default=None,
        metavar="N",
        help="prune generations older than the newest N (default: keep all)",
    )
    p_verify = sub.add_parser("verify", help="integrity-check volumes")
    p_verify.add_argument("names", nargs="*")

    args = parser.parse_args(argv)
    handler = {
        "ls": _ls,
        "info": _info,
        "compact": _compact,
        "verify": _verify,
    }[args.command]
    try:
        return handler(args)
    except StoreError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Store metadata directory: persisted autotune measurements.

The hybrid dispatcher's :func:`~repro.backends.hybrid.autotune_crossover`
probe-sweeps the real sparse/bit ``mxm`` break-even at context creation
— tens of milliseconds that repeat on every process start.  The
measurement depends only on (backend, device, host), so a store root
keeps it in ``<root>/metadata/autotune.json`` and the sweep consults the
file before probing (opt-in via the ``REPRO_STORE`` environment
variable pointing at the store root, or a ``Context`` with a store
attached).

The file is versioned JSON, rewritten atomically on every update::

    {
      "format_version": 1,
      "entries": {
        "cubool@cpu-sim-0": {
          "crossover": 0.0132, "probe_n": 192,
          "four_russians_min_rows": 64, "fr_probe_k": 512
        }
      }
    }

Each entry key may carry any subset of the measurements — the crossover
sweep and the Four-Russians row-break-even probe write their fields
independently (read-modify-write, so one never clobbers the other).

Corrupt or stale files are treated as empty — autotune persistence is a
warm-start optimisation, never a correctness dependency.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

AUTOTUNE_FORMAT_VERSION = 1

#: Environment variable naming the store root whose metadata directory
#: persists autotune measurements across processes.
STORE_ENV = "REPRO_STORE"


def metadata_dir(store_root: str | Path) -> Path:
    return Path(store_root) / "metadata"


def autotune_path(store_root: str | Path) -> Path:
    return metadata_dir(store_root) / "autotune.json"


def _key(backend_name: str, device_name: str) -> str:
    return f"{backend_name}@{device_name}"


def _read(path: Path) -> dict:
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        return {}
    except (ValueError, OSError):
        return {}
    if payload.get("format_version") != AUTOTUNE_FORMAT_VERSION:
        return {}
    entries = payload.get("entries")
    return entries if isinstance(entries, dict) else {}


def load_autotune(
    store_root: str | Path, backend_name: str, device_name: str
) -> float | None:
    """Persisted crossover for (backend, device), or None."""
    entry = _read(autotune_path(store_root)).get(_key(backend_name, device_name))
    if not isinstance(entry, dict):
        return None
    crossover = entry.get("crossover")
    if isinstance(crossover, (int, float)) and 0.0 < crossover <= 1.0:
        return float(crossover)
    return None


def save_autotune(
    store_root: str | Path,
    backend_name: str,
    device_name: str,
    crossover: float,
    *,
    probe_n: int | None = None,
) -> None:
    """Record a measured crossover (read-modify-write, atomic rename)."""
    fields: dict = {"crossover": float(crossover)}
    if probe_n is not None:
        fields["probe_n"] = int(probe_n)
    _merge_entry(store_root, backend_name, device_name, fields)


def load_autotune_fr_min_rows(
    store_root: str | Path, backend_name: str, device_name: str
) -> int | None:
    """Persisted Four-Russians row break-even, or None."""
    entry = _read(autotune_path(store_root)).get(_key(backend_name, device_name))
    if not isinstance(entry, dict):
        return None
    min_rows = entry.get("four_russians_min_rows")
    if isinstance(min_rows, int) and min_rows >= 0:
        return min_rows
    return None


def save_autotune_fr_min_rows(
    store_root: str | Path,
    backend_name: str,
    device_name: str,
    min_rows: int,
    *,
    probe_k: int | None = None,
) -> None:
    """Record a measured Four-Russians break-even (atomic rename)."""
    fields: dict = {"four_russians_min_rows": int(min_rows)}
    if probe_k is not None:
        fields["fr_probe_k"] = int(probe_k)
    _merge_entry(store_root, backend_name, device_name, fields)


def load_autotune_tiled_min_words(
    store_root: str | Path, backend_name: str, device_name: str
) -> int | None:
    """Persisted tiled-parallel word threshold, or None."""
    entry = _read(autotune_path(store_root)).get(_key(backend_name, device_name))
    if not isinstance(entry, dict):
        return None
    min_words = entry.get("tiled_parallel_min_words")
    if isinstance(min_words, int) and min_words >= 0:
        return min_words
    return None


def save_autotune_tiled_min_words(
    store_root: str | Path,
    backend_name: str,
    device_name: str,
    min_words: int,
    *,
    probe_n: int | None = None,
) -> None:
    """Record a measured tiled-parallel threshold (atomic rename)."""
    fields: dict = {"tiled_parallel_min_words": int(min_words)}
    if probe_n is not None:
        fields["tiled_probe_n"] = int(probe_n)
    _merge_entry(store_root, backend_name, device_name, fields)


def _merge_entry(
    store_root: str | Path,
    backend_name: str,
    device_name: str,
    fields: dict,
) -> None:
    """Merge measurement fields into one entry and rewrite atomically."""
    path = autotune_path(store_root)
    path.parent.mkdir(parents=True, exist_ok=True)
    entries = _read(path)
    key = _key(backend_name, device_name)
    entry = entries.get(key)
    entry = dict(entry) if isinstance(entry, dict) else {}
    entry.update(fields)
    entries[key] = entry
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as f:
        json.dump(
            {"format_version": AUTOTUNE_FORMAT_VERSION, "entries": entries},
            f,
            indent=2,
            sort_keys=True,
        )
        f.write("\n")
        f.flush()
        os.fsync(f.fileno())
    os.replace(tmp, path)


def store_root_from_env(environ=None) -> Path | None:
    """The ``REPRO_STORE`` root, when configured and non-empty."""
    raw = (environ if environ is not None else os.environ).get(STORE_ENV, "")
    raw = raw.strip()
    return Path(raw) if raw else None

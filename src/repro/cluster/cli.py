"""``python -m repro cluster`` — replication roles and the self-test.

Subcommands:

``primary``
    Start a writable :class:`~repro.service.QueryService` over a store
    root, restore its volumes, and ship committed WAL transactions to
    any follower that connects.  Runs until interrupted.
``follower``
    Start a read replica: bootstrap from the newest snapshot generation
    in the (shared) store root, tail the primary's WAL stream, serve
    read-only queries at the applied version.  Runs until interrupted.
``status``
    Ask a running primary (or follower) for its status over the wire
    and print it as JSON.
``selftest``
    One primary + N follower subprocesses, interleaved traffic, a
    SIGKILL/rejoin round — the CI smoke (see
    :mod:`repro.cluster.selftest`).
"""

from __future__ import annotations

import argparse
import json
import sys
import threading


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--root", required=True, help="graph store root directory"
    )
    parser.add_argument(
        "--graphs",
        default=None,
        help="comma-separated graph names (default: every volume in the root)",
    )
    parser.add_argument(
        "--workers", type=int, default=2, help="query worker threads"
    )
    parser.add_argument(
        "--heartbeat", type=float, default=0.5, help="heartbeat interval (s)"
    )


def _graph_list(spec: str | None) -> list[str] | None:
    if not spec:
        return None
    return [name.strip() for name in spec.split(",") if name.strip()]


def run_primary(args) -> int:
    from repro.service import QueryService

    from .router import ReadRouter
    from .shipper import ClusterPrimary

    with QueryService(workers=args.workers, store_root=args.root) as service:
        names = _graph_list(args.graphs)
        if names:
            for name in names:
                service.restore_graph(name)
        else:
            names = service.restore_all()
        host, port = _parse(args.listen)
        primary = ClusterPrimary(
            service, host=host, port=port, heartbeat=args.heartbeat
        ).start()
        router = ReadRouter(service, primary, max_staleness=args.max_staleness)
        service.attach_router(router)
        print(
            f"primary up at {_fmt(primary.address)} serving "
            f"{len(names)} graph(s): {', '.join(sorted(names)) or '(none)'}",
            flush=True,
        )
        try:
            threading.Event().wait()  # serve until interrupted
        except KeyboardInterrupt:
            pass
        finally:
            service.detach_router()
            router.close()
            primary.close()
    return 0


def run_follower(args) -> int:
    from .follower import ClusterFollower

    host, port = _parse(args.listen)
    follower = ClusterFollower(
        args.root,
        _parse(args.primary),
        graphs=_graph_list(args.graphs),
        host=host,
        port=port,
        workers=args.workers,
        heartbeat=args.heartbeat,
    )
    follower.start()
    print(
        f"follower up: queries at {_fmt(follower.query_address)}, "
        f"replicating from {_fmt(follower.primary)}",
        flush=True,
    )
    try:
        threading.Event().wait()  # serve until interrupted
    except KeyboardInterrupt:
        pass
    finally:
        follower.close()
    return 0


def run_status(args) -> int:
    from . import protocol
    from .protocol import MSG_STATUS, MSG_STATUS_OK

    sock = protocol.connect(_parse(args.address), timeout=args.timeout)
    try:
        sock.settimeout(args.timeout)
        protocol.send_message(sock, {"type": MSG_STATUS})
        msg = protocol.recv_message(sock)
    finally:
        sock.close()
    if msg is None or msg[0].get("type") != MSG_STATUS_OK:
        print(f"unexpected status reply: {msg and msg[0]}", file=sys.stderr)
        return 1
    print(json.dumps(msg[0].get("stats", {}), indent=2, sort_keys=True))
    return 0


def run_selftest(args) -> int:
    from .selftest import run_cluster_selftest

    return run_cluster_selftest(
        followers=args.followers,
        rounds=args.rounds,
        seed=args.seed,
        max_staleness=args.max_staleness,
        verbose=not args.quiet,
    )


def _parse(address: str) -> tuple[str, int]:
    from .protocol import parse_address

    return parse_address(address)


def _fmt(address) -> str:
    from .protocol import format_address

    return format_address(tuple(address))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro cluster",
        description="WAL-shipping replication: primary, followers, status.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("primary", help="run the writable primary + shipper")
    _add_common(p)
    p.add_argument(
        "--listen", default="127.0.0.1:7431", help="replication host:port"
    )
    p.add_argument(
        "--max-staleness",
        type=int,
        default=None,
        help="bounded-staleness window for routed reads (versions)",
    )
    p.set_defaults(run=run_primary)

    p = sub.add_parser("follower", help="run a read replica")
    _add_common(p)
    p.add_argument(
        "--primary", required=True, help="primary's replication host:port"
    )
    p.add_argument(
        "--listen", default="127.0.0.1:0", help="query host:port (0 = ephemeral)"
    )
    p.set_defaults(run=run_follower)

    p = sub.add_parser("status", help="query a running node's status")
    p.add_argument("address", help="node host:port (primary or follower)")
    p.add_argument("--timeout", type=float, default=5.0)
    p.set_defaults(run=run_status)

    p = sub.add_parser("selftest", help="end-to-end replication smoke")
    p.add_argument("--followers", type=int, default=2)
    p.add_argument("--rounds", type=int, default=6)
    p.add_argument("--seed", type=int, default=20210705)
    p.add_argument("--max-staleness", type=int, default=2)
    p.add_argument("-q", "--quiet", action="store_true")
    p.set_defaults(run=run_selftest)

    args = parser.parse_args(argv)
    if args.command == "primary" and args.max_staleness is None:
        from .router import DEFAULT_MAX_STALENESS

        args.max_staleness = DEFAULT_MAX_STALENESS
    return args.run(args)


if __name__ == "__main__":
    sys.exit(main())

"""Length-prefixed replication wire protocol (:mod:`repro.cluster`).

Every message is::

    header_len   4 B  <u4   byte count of the JSON header
    payload_len  4 B  <u4   byte count of the binary payload
    header       header_len B   UTF-8 JSON object with a "type" key
    payload      payload_len B  raw bytes

The JSON header carries control metadata only; bulk data rides in the
payload **verbatim in the WAL's own CRC framing**
(:mod:`repro.store.wal`).  A ``frames`` payload is the exact byte
sequence :meth:`~repro.store.wal.WriteAheadLog.append` wrote to disk,
so a follower validates shipped transactions with
:func:`~repro.store.wal.decode_transaction` — the same checks crash
recovery applies to the local log — and a torn or flipped byte on the
wire fails closed as :class:`~repro.errors.StoreCorruptError` rather
than applying silently.

Message types
-------------

===========  ======================  =====================================
type         direction               meaning
===========  ======================  =====================================
hello        follower -> primary     subscribe; carries per-graph applied
                                     versions and the follower's query
                                     address
hello_ok     primary -> follower     per-graph plan: ``stream`` (tail the
                                     WAL) or ``resync`` (reload the named
                                     snapshot generation first)
frames       primary -> follower     one committed WAL transaction
                                     (payload = frames verbatim)
ack          follower -> primary     per-graph applied versions
heartbeat    primary -> follower     liveness + current primary versions
query        client -> follower      read-only query with a
                                     ``min_version`` freshness floor
result       follower -> client      query answer + ``applied_version``
error        either                  failure report (``error`` string)
status       client -> either        introspection request
status_ok    either -> client        role status document
===========  ======================  =====================================
"""

from __future__ import annotations

import json
import socket
import struct

from repro.errors import ClusterProtocolError, InvalidArgumentError

_PREFIX = struct.Struct("<II")

#: Control headers are small JSON documents; anything bigger is a
#: protocol violation, not a legitimate message.
MAX_HEADER_BYTES = 1 << 20
#: One WAL transaction's frames.  Mutation batches are bounded by the
#: service tier long before this.
MAX_PAYLOAD_BYTES = 1 << 28

MSG_HELLO = "hello"
MSG_HELLO_OK = "hello_ok"
MSG_FRAMES = "frames"
MSG_ACK = "ack"
MSG_HEARTBEAT = "heartbeat"
MSG_QUERY = "query"
MSG_RESULT = "result"
MSG_ERROR = "error"
MSG_STATUS = "status"
MSG_STATUS_OK = "status_ok"


def send_message(sock: socket.socket, header: dict, payload: bytes = b"") -> None:
    """Write one framed message; blocks until the kernel accepted it."""
    raw = json.dumps(header, separators=(",", ":")).encode("utf-8")
    if len(raw) > MAX_HEADER_BYTES:
        raise ClusterProtocolError(f"outgoing header too large ({len(raw)} B)")
    if len(payload) > MAX_PAYLOAD_BYTES:
        raise ClusterProtocolError(
            f"outgoing payload too large ({len(payload)} B)"
        )
    sock.sendall(_PREFIX.pack(len(raw), len(payload)) + raw + payload)


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    chunks = []
    while count:
        chunk = sock.recv(min(count, 1 << 20))
        if not chunk:
            raise ClusterProtocolError("connection closed mid-message")
        chunks.append(chunk)
        count -= len(chunk)
    return b"".join(chunks)


def recv_message(sock: socket.socket) -> tuple[dict, bytes] | None:
    """Read the next message; ``None`` on clean EOF between messages.

    A close *inside* a message — or an oversized/malformed one — raises
    :class:`~repro.errors.ClusterProtocolError`.  Socket timeouts
    propagate as ``TimeoutError`` for the caller's liveness logic.
    """
    first = sock.recv(_PREFIX.size)
    if not first:
        return None
    while len(first) < _PREFIX.size:
        chunk = sock.recv(_PREFIX.size - len(first))
        if not chunk:
            raise ClusterProtocolError("connection closed mid-message")
        first += chunk
    header_len, payload_len = _PREFIX.unpack(first)
    if header_len > MAX_HEADER_BYTES or payload_len > MAX_PAYLOAD_BYTES:
        raise ClusterProtocolError(
            f"oversized message (header {header_len} B, "
            f"payload {payload_len} B)"
        )
    try:
        header = json.loads(_recv_exact(sock, header_len).decode("utf-8"))
    except ValueError as exc:
        raise ClusterProtocolError(f"malformed message header: {exc}") from exc
    if not isinstance(header, dict) or "type" not in header:
        raise ClusterProtocolError(
            "message header must be a JSON object with a 'type' key"
        )
    payload = _recv_exact(sock, payload_len) if payload_len else b""
    return header, payload


def parse_address(raw: str) -> tuple[str, int]:
    """``"host:port"`` -> ``(host, port)``."""
    host, sep, port = str(raw).rpartition(":")
    if not sep or not host:
        raise InvalidArgumentError(f"address {raw!r} is not host:port")
    try:
        return host, int(port)
    except ValueError as exc:
        raise InvalidArgumentError(
            f"address {raw!r} has a non-numeric port"
        ) from exc


def format_address(address: tuple[str, int]) -> str:
    return f"{address[0]}:{address[1]}"


def connect(address: tuple[str, int], *, timeout: float = 5.0) -> socket.socket:
    """TCP-connect to a peer with ``TCP_NODELAY`` (acks are tiny)."""
    sock = socket.create_connection(address, timeout=timeout)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    return sock


def listener(host: str, port: int, *, backlog: int = 16) -> socket.socket:
    """Bound, listening TCP socket (``port=0`` picks a free port)."""
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    sock.bind((host, port))
    sock.listen(backlog)
    return sock

"""Version-aware read routing across a primary's followers.

The staleness contract (docs/CLUSTER.md):

* every routed read carries a version **floor** —
  ``max(min_version or 0, primary_version - max_staleness)``;
* only followers whose acked version meets the floor are candidates
  (freshest first), and the floor travels with the query, so the
  replica re-checks it against its *actual* applied version — the
  router's view can lag, the guarantee cannot;
* ``min_version=`` therefore gives read-your-writes: pass the version
  a mutation returned and the answer can never predate it;
* when no candidate works (none fresh enough, connection errors, a
  replica raced below the floor) the read falls back to local
  execution on the primary, which is by definition the freshest state.

The router holds no lock across network I/O or query evaluation:
per-replica connections are checked out under the lock, used outside
it, and checked back in.
"""

from __future__ import annotations

from repro.analysis.locktrace import make_lock
from repro.errors import ClusterProtocolError, SpblaError

from . import protocol
from .protocol import MSG_ERROR, MSG_QUERY, MSG_RESULT

DEFAULT_MAX_STALENESS = 8  # versions behind the primary a default read may be


class ReplicaConn:
    """One follower's persistent query connection (checkout pattern)."""

    def __init__(self, fid: str, address: tuple[str, int]):
        self.fid = fid
        self.address = address
        self._lock = make_lock("ReplicaConn._lock")
        self._sock = None  # guarded-by: _lock  (None while checked out)

    def request(self, header: dict, *, timeout: float) -> dict:
        """One request/response round trip; reconnects lazily."""
        with self._lock:
            sock, self._sock = self._sock, None
        try:
            if sock is None:
                sock = protocol.connect(self.address, timeout=timeout)
            sock.settimeout(timeout)
            protocol.send_message(sock, header)
            msg = protocol.recv_message(sock)
        except (SpblaError, OSError, TimeoutError):
            if sock is not None:
                _close_quietly(sock)
            raise
        if msg is None:
            _close_quietly(sock)
            raise ClusterProtocolError(
                f"{self.fid}: replica closed the connection"
            )
        with self._lock:
            if self._sock is None:
                self._sock = sock
            else:  # a concurrent request already checked one back in
                _close_quietly(sock)
        return msg[0]

    def close(self) -> None:
        with self._lock:
            sock, self._sock = self._sock, None
        if sock is not None:
            _close_quietly(sock)


class ReadRouter:
    """Routes the service's sync read surface by freshness requirement."""

    def __init__(
        self,
        service,
        primary,
        *,
        max_staleness: int = DEFAULT_MAX_STALENESS,
        request_timeout: float = 30.0,
    ):
        self.service = service
        self.primary = primary
        self.max_staleness = int(max_staleness)
        self.request_timeout = float(request_timeout)
        self._lock = make_lock("ReadRouter._lock")
        self._conns: dict[str, ReplicaConn] = {}  # guarded-by: _lock
        self._counters: dict[str, int] = {}  # guarded-by: _lock
        self._last_route: dict | None = None  # guarded-by: _lock

    # -- routing -----------------------------------------------------------

    def route_reach(
        self, graph, query, *, source, timeout=None, min_version=None
    ) -> set[int]:
        value = self._route(
            "reach", graph, query,
            source=source, timeout=timeout, min_version=min_version,
        )
        return {int(v) for v in value}

    def route_pairs(
        self, graph, query, *, timeout=None, min_version=None
    ) -> set[tuple[int, int]]:
        value = self._route(
            "pairs", graph, query, timeout=timeout, min_version=min_version
        )
        return {(int(u), int(v)) for u, v in value}

    def route_cfpq(
        self, graph, query, *, timeout=None, min_version=None
    ) -> set[tuple[int, int]]:
        value = self._route(
            "cfpq", graph, query, timeout=timeout, min_version=min_version
        )
        return {(int(u), int(v)) for u, v in value}

    def _route(
        self, kind, graph, query, *, source=None, timeout=None, min_version=None
    ):
        primary_version = self.service.graphs.get(graph).current_version()
        if min_version is not None:
            floor = int(min_version)
        else:
            floor = max(0, primary_version - self.max_staleness)

        header = {
            "type": MSG_QUERY,
            "kind": kind,
            "graph": graph,
            "query": query,
            "min_version": floor,
        }
        if source is not None:
            header["source"] = int(source)
        if timeout is not None:
            header["timeout"] = float(timeout)
        request_timeout = (
            min(self.request_timeout, float(timeout))
            if timeout is not None
            else self.request_timeout
        )

        for fid, address, acked in self._candidates(graph, floor):
            conn = self._conn(fid, address)
            try:
                reply = conn.request(header, timeout=request_timeout)
            except (SpblaError, OSError, TimeoutError):
                self._count("replica_errors")
                continue
            rtype = reply.get("type")
            if rtype == MSG_RESULT:
                self._count("routed_replica")
                self._note_route(fid, reply.get("applied_version"), floor)
                return reply.get("value") or []
            if rtype == MSG_ERROR and reply.get("error") == "stale":
                # The router's acked map outran the replica (e.g. it just
                # restarted); honor the floor and try the next candidate.
                self._count("replica_stale")
                continue
            self._count("replica_errors")

        # Primary fallback: local execution is always fresh enough.
        self._count("routed_primary")
        self._note_route("primary", primary_version, floor)
        return self._local(kind, graph, query, source=source, timeout=timeout)

    def _local(self, kind, graph, query, *, source=None, timeout=None):
        if kind == "reach":
            ticket = self.service.submit_reach(
                graph, query, source=source, timeout=timeout
            )
        elif kind == "pairs":
            ticket = self.service.submit_pairs(graph, query, timeout=timeout)
        else:
            ticket = self.service.submit_cfpq(graph, query, timeout=timeout)
        return ticket.result()

    def _candidates(self, graph: str, floor: int) -> list:
        """Followers able to satisfy ``floor``, freshest first."""
        out = []
        for f in self.primary.followers():
            acked = f["acked"].get(graph)
            address = f.get("query_address")
            if acked is None or address is None or acked < floor:
                continue
            out.append((f["id"], tuple(address), acked))
        out.sort(key=lambda item: item[2], reverse=True)
        return out

    def _conn(self, fid: str, address: tuple[str, int]) -> ReplicaConn:
        with self._lock:
            conn = self._conns.get(fid)
            if conn is None or conn.address != address:
                conn = ReplicaConn(fid, address)
                self._conns[fid] = conn
            return conn

    # -- bookkeeping -------------------------------------------------------

    def _count(self, name: str, delta: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + delta

    def _note_route(self, target: str, applied, floor: int) -> None:
        with self._lock:
            self._last_route = {
                "target": target,
                "applied_version": applied,
                "floor": floor,
            }

    @property
    def last_route(self) -> dict | None:
        """Where the previous routed read went (diagnostics/tests)."""
        with self._lock:
            return dict(self._last_route) if self._last_route else None

    def stats(self) -> dict:
        """Replication view for :class:`~repro.service.stats.ServiceStats`."""
        primary = self.primary.stats()
        with self._lock:
            counters = dict(self._counters)
            last = dict(self._last_route) if self._last_route else None
        return {
            "max_staleness": self.max_staleness,
            "graphs": primary["graphs"],
            "followers": primary["followers"],
            "counters": counters,
            "shipper": primary["counters"],
            "last_route": last,
        }

    def close(self) -> None:
        with self._lock:
            conns = list(self._conns.values())
            self._conns.clear()
        for conn in conns:
            conn.close()


def _close_quietly(sock) -> None:
    try:
        sock.close()
    except OSError:  # pragma: no cover - close races are benign
        pass

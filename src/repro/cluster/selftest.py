"""Cluster self-test: the ``python -m repro cluster selftest`` entry.

Stands up a real deployment — one in-process primary
(:class:`~repro.cluster.ClusterPrimary` + attached
:class:`~repro.cluster.ReadRouter`) and N follower **subprocesses**
started through the public CLI — then drives interleaved mutate/query
traffic and checks the staleness contract end to end:

* a ``min_version=`` read issued right after a mutation is **never**
  stale: whatever it was routed to (a fresh replica or the primary),
  the answer equals the oracle at that exact version;
* a default-routed read never exceeds the configured staleness bound —
  the answering state's ``applied_version`` is within
  ``max_staleness`` of the primary, and the answer equals the oracle
  *at that applied version* (bounded staleness is still consistency:
  a stale answer must be a real historical state, not a torn one);
* ``ServiceStats.replication`` reports every follower with per-graph
  ``applied``/lag;
* a SIGKILLed follower is dropped by the primary, traffic continues
  through the surviving replica and the primary fallback, and a
  respawned follower rejoins from the snapshot + shipped WAL tail and
  converges to the primary's version.

Runs under ``REPRO_CHECK_LOCKS=1`` in CI: lock-sentinel hazards in the
primary process fail the test.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.analysis import locktrace
from repro.datasets.random_graphs import uniform_random_graph
from repro.service.core import QueryService

from .protocol import MSG_QUERY, MSG_RESULT, connect, recv_message, send_message
from .router import ReadRouter
from .shipper import ClusterPrimary

SELFTEST_QUERY = "(a | b)+"
GRAPH = "cluster-selftest"


def run_cluster_selftest(
    *,
    followers: int = 2,
    rounds: int = 6,
    seed: int = 20210705,
    max_staleness: int = 2,
    verbose: bool = True,
) -> int:
    """Run the replication self-test; returns a process exit code."""

    def say(msg: str) -> None:
        if verbose:
            print(msg, flush=True)

    n = 64
    graph = uniform_random_graph(n, 3 * n, labels=("a", "b"), seed=seed)

    failures: list[str] = []
    procs: list[subprocess.Popen] = []
    with tempfile.TemporaryDirectory(prefix="repro-cluster-") as root:
        with QueryService(workers=2, store_root=root) as service:
            service.register_graph(GRAPH, graph)
            service.persist_graph(GRAPH)
            primary = ClusterPrimary(service, heartbeat=0.2).start()
            router = ReadRouter(service, primary, max_staleness=max_staleness)
            service.attach_router(router)
            say(
                f"primary up at {primary.address[0]}:{primary.address[1]} "
                f"(graph {GRAPH!r}, n={n}); spawning {followers} follower "
                f"process(es)"
            )
            try:
                for _ in range(followers):
                    procs.append(_spawn_follower(root, primary.address))
                failures.extend(
                    _drive(service, primary, router, graph, procs, root,
                           rounds=rounds, seed=seed, say=say)
                )
            finally:
                service.detach_router()
                router.close()
                primary.close()
                for proc in procs:
                    _reap(proc)

    tracer = locktrace.tracer()
    if tracer is not None:
        from repro.service.selftest import _lock_graph_crosscheck

        say("")
        say(tracer.report())
        for hazard in tracer.hazards():
            failures.append(f"lock sentinel: {hazard.render()}")
        failures.extend(_lock_graph_crosscheck(tracer, say=say))

    if failures:
        say("")
        for f in failures:
            say(f"FAIL: {f}")
        return 1
    say("")
    say(
        f"cluster selftest ok: {rounds} mutation rounds over 1 primary + "
        f"{followers} follower processes; min_version reads never stale, "
        f"default reads within {max_staleness} versions and historically "
        f"consistent; SIGKILLed follower rejoined and converged"
    )
    return 0


# -- traffic ------------------------------------------------------------------


def _drive(
    service, primary, router, graph, procs, root, *, rounds, seed, say
) -> list[str]:
    import numpy as np

    failures: list[str] = []
    rng = np.random.default_rng(seed)

    version = service.graphs.get(GRAPH).current_version()
    if not _wait(
        lambda: _caught_up(primary, version) >= len(procs), timeout=60.0
    ):
        return [
            f"only {_caught_up(primary, version)}/{len(procs)} followers "
            f"caught up to v{version} within 60s"
        ]
    say(f"{len(procs)} follower(s) connected and caught up to v{version}")

    oracle = _Oracle(graph)
    oracle.snap(version)

    def mutate() -> int:
        edge = (int(rng.integers(graph.n)), int(rng.integers(graph.n)))
        v = service.add_edges(GRAPH, "a", [edge])
        oracle.add("a", edge)
        oracle.snap(v)
        return v

    def check_round(tag: str) -> None:
        v = mutate()
        source = int(rng.integers(graph.n))

        # Read-your-writes: the min_version floor makes staleness
        # impossible — v is the newest version, so the answer must be
        # the oracle at exactly v.
        got = service.reach(GRAPH, SELFTEST_QUERY, source=source, min_version=v)
        if got != oracle.reach(v, source):
            failures.append(f"{tag}: min_version=v{v} read is stale or wrong")
        route = router.last_route or {}
        if route.get("floor") != v:
            failures.append(f"{tag}: min_version floor not honored: {route}")

        # Default route: bounded staleness, historically consistent.
        got = service.reach(GRAPH, SELFTEST_QUERY, source=source)
        route = router.last_route or {}
        applied = route.get("applied_version")
        if applied is None or applied < v - router.max_staleness:
            failures.append(
                f"{tag}: default read exceeded staleness bound: {route} "
                f"(primary at v{v})"
            )
        elif got != oracle.reach(int(applied), source):
            failures.append(
                f"{tag}: default read at v{applied} does not match the "
                f"oracle at v{applied}"
            )

    for i in range(rounds):
        check_round(f"round {i}")

    version = service.graphs.get(GRAPH).current_version()
    snap = service.stats()
    rep = snap.replication
    say("")
    say(snap.render())
    reported = rep.get("followers", [])
    if len(reported) != len(procs):
        failures.append(
            f"ServiceStats.replication reports {len(reported)} followers, "
            f"expected {len(procs)}"
        )
    for f in reported:
        if GRAPH not in f.get("acked", {}) or GRAPH not in f.get("lag", {}):
            failures.append(
                f"ServiceStats.replication follower {f.get('id')} lacks "
                f"applied_version/lag for {GRAPH!r}"
            )
    counters = rep.get("counters", {})
    if not counters.get("routed_replica"):
        failures.append("no read was ever routed to a replica")

    # -- SIGKILL a follower, keep mutating, respawn, converge --------------
    victim = procs[0]
    say("")
    say(f"SIGKILL follower pid {victim.pid}")
    os.kill(victim.pid, signal.SIGKILL)
    victim.wait()
    if not _wait(lambda: len(primary.followers()) < len(procs), timeout=30.0):
        failures.append("primary never dropped the SIGKILLed follower")

    for i in range(2):
        check_round(f"post-kill round {i}")

    procs[0] = _spawn_follower(root, primary.address)
    say(f"respawned follower pid {procs[0].pid}")
    version = service.graphs.get(GRAPH).current_version()
    if not _wait(
        lambda: _caught_up(primary, version) >= len(procs), timeout=60.0
    ):
        failures.append(
            f"respawned follower did not converge to v{version} within 60s"
        )
    else:
        say(f"rejoined: {len(procs)} follower(s) converged to v{version}")

    # Every follower, asked directly with the newest floor, must answer
    # with the oracle's newest state — follower ≡ primary at the acked
    # version.
    source = 0
    want = oracle.reach(version, source)
    for f in primary.followers():
        addr = f.get("query_address")
        if addr is None:
            failures.append(f"follower {f['id']} published no query address")
            continue
        got, applied = _direct_query(
            tuple(addr), GRAPH, SELFTEST_QUERY, source, min_version=version
        )
        if applied < version or got != want:
            failures.append(
                f"follower {f['id']} at v{applied} disagrees with the "
                f"primary at v{version}"
            )
    return failures


# -- oracle -------------------------------------------------------------------


class _Oracle:
    """Per-version answer oracle on an independent plain context."""

    def __init__(self, graph):
        import repro
        from repro.graph import LabeledGraph

        self.ctx = repro.Context(backend="cubool")
        self.host = LabeledGraph(n=graph.n)
        for label, pairs in graph.edges.items():
            self.host.edges[label] = list(pairs)
        self.pairs_by_version: dict[int, set] = {}

    def add(self, label: str, edge) -> None:
        self.host.edges.setdefault(label, []).append(edge)

    def snap(self, version: int) -> None:
        from repro.rpq import rpq_pairs

        self.pairs_by_version[version] = rpq_pairs(
            self.host, SELFTEST_QUERY, self.ctx
        )

    def reach(self, version: int, source: int) -> set[int]:
        pairs = self.pairs_by_version[version]
        return {v for u, v in pairs if u == source}


# -- plumbing -----------------------------------------------------------------


def _spawn_follower(root: str, primary_address) -> subprocess.Popen:
    import repro

    src = str(Path(repro.__file__).resolve().parent.parent)
    env = dict(os.environ)
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "cluster",
            "follower",
            "--root",
            root,
            "--primary",
            f"{primary_address[0]}:{primary_address[1]}",
            "--listen",
            "127.0.0.1:0",
            "--workers",
            "1",
            "--heartbeat",
            "0.2",
        ],
        env=env,
        stdout=subprocess.DEVNULL,
    )


def _reap(proc: subprocess.Popen) -> None:
    if proc.poll() is None:
        proc.terminate()
        try:
            proc.wait(timeout=10)
        except subprocess.TimeoutExpired:  # pragma: no cover - last resort
            proc.kill()
            proc.wait()


def _caught_up(primary, version: int) -> int:
    return sum(
        1
        for f in primary.followers()
        if f["acked"].get(GRAPH, -1) >= version
    )


def _wait(predicate, *, timeout: float, poll: float = 0.05) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(poll)
    return bool(predicate())


def _direct_query(
    address, graph: str, query: str, source: int, *, min_version: int
) -> tuple[set[int], int]:
    """One raw wire query against a follower; returns (answer, version)."""
    sock = connect(address, timeout=10.0)
    try:
        sock.settimeout(30.0)
        send_message(
            sock,
            {
                "type": MSG_QUERY,
                "kind": "reach",
                "graph": graph,
                "query": query,
                "source": source,
                "min_version": min_version,
            },
        )
        msg = recv_message(sock)
    finally:
        sock.close()
    if msg is None or msg[0].get("type") != MSG_RESULT:
        return set(), -1
    header = msg[0]
    return (
        {int(v) for v in header.get("value") or []},
        int(header.get("applied_version", -1)),
    )

"""Primary/replica replication for the query service.

One writable :class:`~repro.service.QueryService` (the **primary**)
ships its committed WAL transactions — in the store's own CRC framing,
verbatim — to any number of **followers**, each a read-only service
bootstrapped from the newest mmap'd snapshot generation and kept
converged by the stream.  A :class:`ReadRouter` attached to the
primary's facade routes sync reads by freshness requirement with a
hard ``min_version`` guarantee and a bounded-staleness default.

See docs/CLUSTER.md for the wire protocol, the bootstrap/catch-up
state machine, and the staleness contract; ``python -m repro cluster``
runs the roles.
"""

from .follower import ClusterFollower
from .router import DEFAULT_MAX_STALENESS, ReadRouter
from .shipper import ClusterPrimary

__all__ = [
    "ClusterFollower",
    "ClusterPrimary",
    "DEFAULT_MAX_STALENESS",
    "ReadRouter",
]

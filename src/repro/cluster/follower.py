"""Read replica: the follower side of :mod:`repro.cluster` replication.

A :class:`ClusterFollower` owns its own
:class:`~repro.service.QueryService` and keeps it converged with the
primary:

* **bootstrap** — :meth:`GraphStore.restore_replica` loads the newest
  committed snapshot generation with ``mmap=True``, so N follower
  processes on one host share the snapshot's pages through the page
  cache (no per-process copy of the bit containers);
* **catch-up / steady state** — a replication thread connects to the
  primary, announces its per-graph applied versions (``hello``),
  resyncs any graph the snapshot left behind, then applies shipped WAL
  transactions through :meth:`GraphStore.apply_replicated` (the
  :class:`~repro.incr.overlay.DeltaOverlay` path) and acks each one;
* **serving** — a query listener answers read-only queries, enforcing
  each query's ``min_version`` floor against the tracked
  ``applied_version`` (stale -> ``error``, so the router tries the
  next candidate or the primary).

Shipped payloads are CRC-validated by
:func:`~repro.store.wal.decode_transaction` before touching any state;
a torn frame on the wire drops the connection, and the reconnect
handshake re-requests everything after the last applied version.
"""

from __future__ import annotations

import threading
import time

from repro.analysis.locktrace import make_lock
from repro.errors import (
    ClusterError,
    ClusterProtocolError,
    SpblaError,
    StoreCorruptError,
    StoreError,
)
from repro.store.wal import decode_transaction

from . import protocol
from .protocol import (
    MSG_ACK,
    MSG_ERROR,
    MSG_FRAMES,
    MSG_HEARTBEAT,
    MSG_HELLO,
    MSG_HELLO_OK,
    MSG_QUERY,
    MSG_RESULT,
    MSG_STATUS,
    MSG_STATUS_OK,
)


class ClusterFollower:
    """One read-replica process tailing a primary's WAL stream."""

    def __init__(
        self,
        store_root,
        primary: tuple[str, int],
        *,
        graphs: list[str] | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        heartbeat: float = 0.5,
        backoff_min: float = 0.1,
        backoff_max: float = 2.0,
        backend: str = "cubool",
        hybrid=None,
    ):
        from repro.service import QueryService

        self.store_root = store_root
        self.primary = (str(primary[0]), int(primary[1]))
        self.heartbeat = max(0.05, float(heartbeat))
        self.backoff_min = float(backoff_min)
        self.backoff_max = float(backoff_max)
        self.service = QueryService(
            backend=backend,
            hybrid=hybrid,
            workers=workers,
            store_root=store_root,
        )
        self._graph_filter = list(graphs) if graphs else None
        self._lock = make_lock("ClusterFollower._lock")
        # Waiters (wait_applied) sleep on _lock via this condition; the
        # two share one lock object, so `with self._lock:` guards both
        # the fields and the notify/wait calls.
        self._cond = threading.Condition(self._lock)
        self._applied: dict[str, int] = {}  # guarded-by: _lock
        self._generations: dict[str, int] = {}  # guarded-by: _lock
        self._primary_versions: dict[str, int] = {}  # guarded-by: _lock
        self._counters: dict[str, int] = {}  # guarded-by: _lock
        self._last_error: str | None = None  # guarded-by: _lock
        self._connected = False  # guarded-by: _lock
        self._rsock = None  # guarded-by: _lock  (live replication socket)
        self._closed = threading.Event()
        self._qsock = protocol.listener(host, port)
        self.query_address = self._qsock.getsockname()

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "ClusterFollower":
        self._bootstrap()
        threading.Thread(
            target=self._query_accept_loop,
            name="repro-follower-query",
            daemon=True,
        ).start()
        threading.Thread(
            target=self._replication_loop,
            name="repro-follower-repl",
            daemon=True,
        ).start()
        return self

    def close(self) -> None:
        self._closed.set()
        _close_quietly(self._qsock)
        with self._lock:
            rsock = self._rsock
        if rsock is not None:
            _close_quietly(rsock)
        self.service.close()

    def __enter__(self) -> "ClusterFollower":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- bootstrap ---------------------------------------------------------

    def _bootstrap(self) -> None:
        """Load every replicable volume's newest snapshot (mmap'd)."""
        from repro.store.volume import list_volumes

        if self._graph_filter is not None:
            names = list(self._graph_filter)
        else:
            names = []
            for volume in list_volumes(self.store_root):
                names.append(volume.path.name)
                volume.close()
        for name in names:
            try:
                handle, generation = self.service.graphs.restore_replica(name)
            except StoreError:
                # Nothing committed yet; announce "have nothing" and let
                # the primary's handoff drive a resync once it persists.
                with self._lock:
                    self._applied[name] = -1
                continue
            with self._lock:
                self._applied[name] = handle.current_version()
                self._generations[name] = generation

    # -- replication -------------------------------------------------------

    def _replication_loop(self) -> None:
        backoff = self.backoff_min
        while not self._closed.is_set():
            try:
                self._replicate_once()
                backoff = self.backoff_min
            except (SpblaError, OSError, TimeoutError) as exc:
                with self._lock:
                    self._last_error = f"{type(exc).__name__}: {exc}"
                self._count("stream_errors")
            with self._lock:
                self._connected = False
            if self._closed.is_set():
                return
            self._count("reconnects")
            self._closed.wait(backoff)
            backoff = min(backoff * 2, self.backoff_max)

    def _replicate_once(self) -> None:
        sock = protocol.connect(self.primary, timeout=5.0)
        with self._lock:
            self._rsock = sock
        try:
            with self._lock:
                applied = dict(self._applied)
            protocol.send_message(
                sock,
                {
                    "type": MSG_HELLO,
                    "graphs": applied,
                    "query_address": list(self.query_address),
                },
            )
            msg = protocol.recv_message(sock)
            if msg is None:
                return
            header, _ = msg
            if header.get("type") != MSG_HELLO_OK:
                raise ClusterProtocolError(
                    f"expected hello_ok, got {header.get('type')!r}"
                )
            plan = header.get("graphs")
            plan = plan if isinstance(plan, dict) else {}
            acks: dict[str, int] = {}
            for name, entry in sorted(plan.items()):
                action = entry.get("action")
                if action == "resync":
                    self._resync(name, entry)
                if action in ("stream", "resync"):
                    acks[name] = self.applied_version(name)
            if not acks:
                raise ClusterError(
                    "primary has no replicable graphs yet; retrying"
                )
            protocol.send_message(sock, {"type": MSG_ACK, "graphs": acks})
            with self._lock:
                self._connected = True

            # Steady state: a silent primary past several heartbeat
            # periods is a dead one — time out and reconnect.
            sock.settimeout(max(10 * self.heartbeat, 5.0))
            while not self._closed.is_set():
                msg = protocol.recv_message(sock)
                if msg is None:
                    return
                header, payload = msg
                kind = header.get("type")
                if kind == MSG_FRAMES:
                    self._apply_frames(sock, header, payload)
                elif kind == MSG_HEARTBEAT:
                    versions = header.get("versions")
                    with self._lock:
                        if isinstance(versions, dict):
                            self._primary_versions = {
                                k: int(v) for k, v in versions.items()
                            }
                        applied = dict(self._applied)
                    protocol.send_message(
                        sock, {"type": MSG_ACK, "graphs": applied}
                    )
                elif kind == MSG_ERROR:
                    raise ClusterError(f"primary: {header.get('error')}")
        finally:
            with self._lock:
                self._rsock = None
            _close_quietly(sock)

    def _apply_frames(self, sock, header: dict, payload: bytes) -> None:
        name = str(header.get("graph"))
        try:
            deltas, version = decode_transaction(
                payload, where=f"{name} replication stream"
            )
        except StoreCorruptError:
            # Damage on the wire fails closed: drop the connection; the
            # reconnect hello re-requests from the last *applied*
            # version, so the mangled transaction is shipped again.
            self._count("wire_corrupt")
            raise
        applied = self.service.graphs.apply_replicated(name, deltas)
        with self._lock:
            self._applied[name] = applied
            self._cond.notify_all()
        self._count("applied_txns")
        protocol.send_message(sock, {"type": MSG_ACK, "graphs": {name: applied}})

    def _resync(self, name: str, entry: dict) -> None:
        """Reload from the (newer) snapshot generation the primary named."""
        target = entry.get("generation")
        target = int(target) if target is not None else None
        with self._lock:
            have = self._generations.get(name)
        if (
            have is not None
            and target is not None
            and have >= target
            and name in self.service.graphs
        ):
            return  # already at (or past) that generation
        handle, generation = self.service.graphs.restore_replica(
            name, generation=target
        )
        with self._lock:
            self._applied[name] = handle.current_version()
            self._generations[name] = generation
            self._cond.notify_all()
        self._count("resyncs")

    # -- query serving -----------------------------------------------------

    def _query_accept_loop(self) -> None:
        while not self._closed.is_set():
            try:
                conn, _ = self._qsock.accept()
            except OSError:
                return
            threading.Thread(
                target=self._serve_query_conn,
                args=(conn,),
                name="repro-follower-serve",
                daemon=True,
            ).start()

    def _serve_query_conn(self, conn) -> None:
        try:
            conn.settimeout(120.0)
            while not self._closed.is_set():
                msg = protocol.recv_message(conn)
                if msg is None:
                    return
                header, _ = msg
                kind = header.get("type")
                if kind == MSG_STATUS:
                    protocol.send_message(
                        conn, {"type": MSG_STATUS_OK, "stats": self.stats()}
                    )
                elif kind == MSG_QUERY:
                    self._answer(conn, header)
                else:
                    protocol.send_message(
                        conn,
                        {
                            "type": MSG_ERROR,
                            "error": f"expected query, got {kind!r}",
                        },
                    )
        except (SpblaError, OSError, TimeoutError):
            self._count("query_conn_errors")
        finally:
            _close_quietly(conn)

    def _answer(self, conn, header: dict) -> None:
        name = str(header.get("graph"))
        kind = str(header.get("kind"))
        min_version = int(header.get("min_version") or 0)
        applied = self.applied_version(name)
        if applied < min_version:
            # The hard staleness guarantee: a replica never serves below
            # the requested floor, whatever the router believed.
            self._count("stale_rejected")
            protocol.send_message(
                conn,
                {
                    "type": MSG_ERROR,
                    "error": "stale",
                    "graph": name,
                    "applied_version": applied,
                    "min_version": min_version,
                },
            )
            return
        try:
            query = str(header.get("query"))
            timeout = header.get("timeout")
            if kind == "reach":
                reached = self.service.reach(
                    name, query, source=int(header.get("source")),
                    timeout=timeout,
                )
                value = sorted(int(v) for v in reached)
            elif kind == "pairs":
                value = _pair_list(
                    self.service.pairs(name, query, timeout=timeout)
                )
            elif kind == "cfpq":
                value = _pair_list(
                    self.service.cfpq(name, query, timeout=timeout)
                )
            else:
                protocol.send_message(
                    conn,
                    {"type": MSG_ERROR, "error": f"unknown query kind {kind!r}"},
                )
                return
        except SpblaError as exc:
            protocol.send_message(
                conn,
                {
                    "type": MSG_ERROR,
                    "error": str(exc),
                    "kind": type(exc).__name__,
                    "graph": name,
                },
            )
            return
        self._count("queries_served")
        protocol.send_message(
            conn,
            {
                "type": MSG_RESULT,
                "graph": name,
                "kind": kind,
                "value": value,
                "applied_version": applied,
            },
        )

    # -- introspection -----------------------------------------------------

    def _count(self, name: str, delta: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + delta

    def applied_version(self, name: str) -> int:
        with self._lock:
            return self._applied.get(name, -1)

    def applied_versions(self) -> dict[str, int]:
        with self._lock:
            return dict(self._applied)

    def connected(self) -> bool:
        with self._lock:
            return self._connected

    def wait_applied(
        self, name: str, version: int, *, timeout: float = 10.0
    ) -> bool:
        """Block until ``name`` reaches ``version``; False on timeout."""
        deadline = time.monotonic() + timeout
        with self._lock:
            while self._applied.get(name, -1) < version:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._cond.wait(remaining)
            return True

    def stats(self) -> dict:
        with self._lock:
            return {
                "role": "follower",
                "primary": list(self.primary),
                "query_address": list(self.query_address),
                "connected": self._connected,
                "applied": dict(self._applied),
                "generations": dict(self._generations),
                "primary_versions": dict(self._primary_versions),
                "counters": dict(self._counters),
                "last_error": self._last_error,
            }


def _pair_list(pairs) -> list[list[int]]:
    return sorted([int(u), int(v)] for u, v in pairs)


def _close_quietly(sock) -> None:
    try:
        sock.close()
    except OSError:  # pragma: no cover - close races are benign
        pass

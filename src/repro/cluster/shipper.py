"""WAL shipper: the primary side of :mod:`repro.cluster` replication.

A :class:`ClusterPrimary` wraps a live
:class:`~repro.service.QueryService` and streams every committed WAL
transaction to subscribed followers:

* one **accept thread** takes connections on the replication port;
* each follower connection gets a **sender thread** (handshake, then
  :class:`~repro.store.wal.WalCursor` tailing per graph, heartbeats
  when idle) and an **ack thread** (drains ``ack`` messages into the
  follower registry, which feeds the read router's freshness map);
* a condition variable woken by :attr:`GraphStore.on_mutate` turns
  commits into immediate ships instead of poll latency.

The sender owns its socket's write side exclusively (acks flow only
follower -> primary on that socket), so no lock is ever held across
network I/O or a kernel.
"""

from __future__ import annotations

import socket
import threading
import time

from repro.analysis.locktrace import make_lock
from repro.errors import ClusterProtocolError, SpblaError, UnknownGraphError
from repro.store.wal import WalCursor

from . import protocol
from .protocol import MSG_FRAMES, MSG_HEARTBEAT


class FollowerState:
    """Registry entry for one connected follower.

    Plain data; every field is guarded by the owning
    :class:`ClusterPrimary`'s ``_lock``.
    """

    def __init__(self, fid: str, query_address: tuple[str, int] | None):
        self.id = fid
        self.query_address = query_address
        self.acked: dict[str, int] = {}  # graph -> last acked applied version
        self.sent: dict[str, int] = {}  # graph -> last shipped version
        self.last_ack = time.monotonic()


class ClusterPrimary:
    """Replication endpoint for the writable service instance."""

    def __init__(
        self,
        service,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        heartbeat: float = 0.5,
    ):
        self.service = service
        self.host = host
        self.port = port
        self.heartbeat = max(0.05, float(heartbeat))
        self._lock = make_lock("ClusterPrimary._lock")
        self._followers: dict[str, FollowerState] = {}  # guarded-by: _lock
        self._conns: set = set()  # guarded-by: _lock
        self._counters: dict[str, int] = {}  # guarded-by: _lock
        self._seq = 0  # guarded-by: _lock
        # Commit wake-up: GraphStore.on_mutate notifies, idle senders wait.
        self._wake = threading.Condition(make_lock("ClusterPrimary._wake"))
        self._closed = threading.Event()
        self._listener = None
        self._address: tuple[str, int] | None = None
        #: Test hook: ``corrupt_hook(graph, version, payload) -> payload``
        #: mangles outgoing frame payloads to exercise the follower's
        #: CRC rejection path.  Assigned before traffic; not guarded.
        self.corrupt_hook = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "ClusterPrimary":
        self._listener = protocol.listener(self.host, self.port)
        self._address = self._listener.getsockname()
        self.service.graphs.on_mutate = self._on_mutate
        threading.Thread(
            target=self._accept_loop, name="repro-ship-accept", daemon=True
        ).start()
        return self

    @property
    def address(self) -> tuple[str, int]:
        if self._address is None:
            raise ClusterProtocolError("primary not started")
        return self._address

    def close(self) -> None:
        self._closed.set()
        if self.service.graphs.on_mutate is self._on_mutate:
            self.service.graphs.on_mutate = None
        if self._listener is not None:
            _close_quietly(self._listener)
        with self._lock:
            conns = list(self._conns)
        for conn in conns:
            _close_quietly(conn)
        with self._wake:
            self._wake.notify_all()

    def __enter__(self) -> "ClusterPrimary":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- commit wake-up ----------------------------------------------------

    def _on_mutate(self, name: str, version: int) -> None:
        # Called by GraphStore.apply_batch outside its locks.
        with self._wake:
            self._wake.notify_all()

    # -- connection handling -----------------------------------------------

    def _accept_loop(self) -> None:
        while not self._closed.is_set():
            try:
                conn, addr = self._listener.accept()
            except OSError:
                return  # listener closed
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            threading.Thread(
                target=self._serve_conn,
                args=(conn, addr),
                name="repro-ship-conn",
                daemon=True,
            ).start()

    def _serve_conn(self, conn, addr) -> None:
        with self._lock:
            self._conns.add(conn)
        try:
            conn.settimeout(30.0)
            msg = protocol.recv_message(conn)
            if msg is None:
                return
            header, _ = msg
            kind = header.get("type")
            if kind == protocol.MSG_STATUS:
                protocol.send_message(
                    conn, {"type": protocol.MSG_STATUS_OK, "stats": self.stats()}
                )
                return
            if kind != protocol.MSG_HELLO:
                protocol.send_message(
                    conn,
                    {
                        "type": protocol.MSG_ERROR,
                        "error": f"expected hello, got {kind!r}",
                    },
                )
                return
            self._serve_follower(conn, addr, header)
        except (SpblaError, OSError, TimeoutError):
            self._count("conn_errors")
        finally:
            with self._lock:
                self._conns.discard(conn)
            _close_quietly(conn)

    def _serve_follower(self, conn, addr, hello: dict) -> None:
        wanted = hello.get("graphs")
        if not isinstance(wanted, dict):
            wanted = {}
        names = sorted(wanted) or self.service.graphs.names()

        plan: dict[str, dict] = {}
        for name in names:
            try:
                handle = self.service.graphs.get(name)
            except UnknownGraphError:
                plan[name] = {"action": "unknown"}
                continue
            volume = handle.volume
            coords = volume.handoff() if volume is not None else None
            if coords is None:
                plan[name] = {
                    "action": "unavailable",
                    "reason": "graph has no committed snapshot "
                    "(persist it on the primary first)",
                }
                continue
            have = int(wanted.get(name, -1))
            # A follower at or past the snapshot version streams: the WAL
            # holds exactly the (snapshot_version, now] suffix, so every
            # transaction it lacks is shippable.  One behind the snapshot
            # reloads that generation from the shared volume dir first.
            action = (
                "stream" if have >= coords["snapshot_version"] else "resync"
            )
            plan[name] = {
                "action": action,
                "from": have if action == "stream" else coords["snapshot_version"],
                "wal_path": str(volume.wal.path),
                **coords,
            }

        raw_qaddr = hello.get("query_address")
        query_address = (
            (str(raw_qaddr[0]), int(raw_qaddr[1]))
            if isinstance(raw_qaddr, (list, tuple)) and len(raw_qaddr) == 2
            else None
        )
        with self._lock:
            self._seq += 1
            fid = (
                protocol.format_address(query_address)
                if query_address is not None
                else f"{addr[0]}:{addr[1]}#{self._seq}"
            )
            fol = FollowerState(fid, query_address)
            for name, entry in plan.items():
                if entry["action"] == "stream":
                    fol.acked[name] = int(wanted.get(name, -1))
            self._followers[fid] = fol

        try:
            wire_plan = {
                name: {k: v for k, v in entry.items() if k != "wal_path"}
                for name, entry in plan.items()
            }
            protocol.send_message(
                conn, {"type": protocol.MSG_HELLO_OK, "graphs": wire_plan}
            )
            ack_thread = threading.Thread(
                target=self._ack_loop,
                args=(conn, fol),
                name="repro-ship-ack",
                daemon=True,
            )
            ack_thread.start()
            self._ship_loop(conn, fol, plan)
        finally:
            with self._lock:
                if self._followers.get(fid) is fol:
                    del self._followers[fid]
            self._count("disconnects")

    # -- shipping ----------------------------------------------------------

    def _ship_loop(self, conn, fol: FollowerState, plan: dict) -> None:
        streams: dict[str, WalCursor] = {}
        last_sent: dict[str, int] = {}
        for name, entry in plan.items():
            if entry["action"] in ("stream", "resync"):
                streams[name] = WalCursor(entry["wal_path"])
                last_sent[name] = int(entry["from"])
        if not streams:
            raise ClusterProtocolError(
                "no replicable graphs (nothing persisted on the primary)"
            )

        conn.settimeout(None)  # sends block until the kernel takes them
        last_beat = time.monotonic()
        while not self._closed.is_set():
            sent_any = False
            for name, cursor in streams.items():
                for version, raw in cursor.poll():
                    if version <= last_sent[name]:
                        continue  # re-read after a log reset; already shipped
                    if version != last_sent[name] + 1:
                        # A compaction reset the log before this cursor
                        # polled the tail: the missing transactions are
                        # gone from disk.  Drop the connection; the
                        # follower renegotiates and resyncs from the new
                        # snapshot generation.
                        self._count("gaps")
                        raise ClusterProtocolError(
                            f"{name}: WAL gap at v{version} "
                            f"(last shipped v{last_sent[name]})"
                        )
                    payload = raw
                    hook = self.corrupt_hook
                    if hook is not None:
                        payload = hook(name, version, payload)
                    protocol.send_message(
                        conn,
                        {"type": MSG_FRAMES, "graph": name, "version": version},
                        payload,
                    )
                    last_sent[name] = version
                    with self._lock:
                        fol.sent[name] = version
                    self._count("shipped_txns")
                    self._count("shipped_bytes", len(payload))
                    sent_any = True
            now = time.monotonic()
            if sent_any:
                last_beat = now
                continue
            if now - last_beat >= self.heartbeat:
                versions = {
                    name: self._graph_version(name) for name in streams
                }
                protocol.send_message(
                    conn, {"type": MSG_HEARTBEAT, "versions": versions}
                )
                self._count("heartbeats")
                last_beat = now
            with self._wake:
                self._wake.wait(timeout=self.heartbeat / 2)

    def _graph_version(self, name: str) -> int:
        try:
            return self.service.graphs.get(name).current_version()
        except UnknownGraphError:
            return -1

    def _ack_loop(self, conn, fol: FollowerState) -> None:
        try:
            while not self._closed.is_set():
                msg = protocol.recv_message(conn)
                if msg is None:
                    return
                header, _ = msg
                if header.get("type") != protocol.MSG_ACK:
                    continue
                graphs = header.get("graphs")
                if not isinstance(graphs, dict):
                    continue
                with self._lock:
                    for name, version in graphs.items():
                        fol.acked[name] = int(version)
                    fol.last_ack = time.monotonic()
                self._count("acks")
        except (SpblaError, OSError, TimeoutError):
            return
        finally:
            # A dead read side means a dead follower: shut the socket so
            # the sender's next write fails promptly, and wake it.
            _shutdown_quietly(conn)
            with self._wake:
                self._wake.notify_all()

    # -- introspection -----------------------------------------------------

    def _count(self, name: str, delta: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + delta

    def followers(self) -> list[dict]:
        """Connected followers with per-graph shipped/acked versions."""
        with self._lock:
            return [
                {
                    "id": f.id,
                    "query_address": f.query_address,
                    "acked": dict(f.acked),
                    "sent": dict(f.sent),
                    "last_ack": f.last_ack,
                }
                for f in self._followers.values()
            ]

    def stats(self) -> dict:
        """Role status: graph versions, per-follower lag, counters."""
        versions = {
            name: self._graph_version(name)
            for name in self.service.graphs.names()
        }
        followers = []
        for f in self.followers():
            f = dict(f)
            f["lag"] = {
                name: versions.get(name, 0) - acked
                for name, acked in f["acked"].items()
            }
            followers.append(f)
        with self._lock:
            counters = dict(self._counters)
        return {
            "role": "primary",
            "address": list(self.address),
            "graphs": versions,
            "followers": followers,
            "counters": counters,
        }


def _close_quietly(sock) -> None:
    try:
        sock.close()
    except OSError:  # pragma: no cover - close races are benign
        pass


def _shutdown_quietly(sock) -> None:
    try:
        sock.shutdown(socket.SHUT_RDWR)
    except OSError:
        pass

"""CI crash-recovery matrix for the persistent graph store.

Builds a real volume through the service tier (snapshot + two WAL
transactions), then simulates a crash at **every byte boundary** of the
last transaction: the log is truncated to each prefix length and the
volume reloaded, asserting recovery lands exactly on the previous
committed version with the previous committed edge set — never a
partial transaction, never a lost committed one.  Finishes with the
`python -m repro store verify` smoke over the intact store.

Run: PYTHONPATH=src python scripts/crash_recovery_check.py
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro.datasets.random_graphs import uniform_random_graph
from repro.service import QueryService
from repro.store import GraphVolume
from repro.store.cli import main as store_main


def main() -> int:
    graph = uniform_random_graph(48, 200, labels=("a", "b"), seed=3)
    with tempfile.TemporaryDirectory(prefix="repro-crash-") as tmp:
        wal_path = Path(tmp) / "volumes" / "g" / "wal.log"
        with QueryService(workers=0, store_root=tmp) as svc:
            svc.register_graph("g", graph)
            svc.persist_graph("g")
            svc.add_edges("g", "a", [(0, 47), (1, 46)])   # txn 1 -> v1
            committed_size = wal_path.stat().st_size
            svc.remove_edges("g", "a", [(0, 47)])          # txn 2 -> v2
        full = wal_path.read_bytes()
        volume_dir = wal_path.parent

        want_edges = None
        cuts = range(committed_size, len(full) + 1)
        for cut in cuts:
            wal_path.write_bytes(full[:cut])
            state = GraphVolume.open(volume_dir).load()
            expect = 2 if cut == len(full) else 1
            if state.version != expect:
                print(
                    f"FAIL: cut at byte {cut}: recovered v{state.version}, "
                    f"want v{expect}"
                )
                return 1
            if expect == 1:
                if want_edges is None:
                    want_edges = state.graph.edges["a"]
                elif state.graph.edges["a"] != want_edges:
                    print(f"FAIL: cut at byte {cut}: edge set diverged")
                    return 1
                if (0, 47) not in state.graph.edges["a"]:
                    print(f"FAIL: cut at byte {cut}: lost committed delta")
                    return 1
        print(
            f"crash matrix ok: {len(cuts)} cut points "
            f"({committed_size}..{len(full)}), all recovered to the last "
            f"committed version"
        )

        # Torn-tail repair is a writer-only action (readers must not
        # mutate a volume a live service could own); a writer load
        # truncates in place and the store then passes a full sweep.
        wal_path.write_bytes(full[: len(full) - 7])  # leave a torn tail
        writer = GraphVolume.open(volume_dir, writer=True)
        writer.load()
        writer.close()
        if wal_path.stat().st_size != committed_size:
            print("FAIL: writer recovery did not truncate the torn tail")
            return 1
        if store_main(["--root", tmp, "verify"]) != 0:
            print("FAIL: store verify after recovery")
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

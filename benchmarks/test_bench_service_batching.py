"""E12 — multi-query batching in the concurrent query service.

Two levels of measurement:

1. **Kernel level** — ``rpq_reach_batch`` coalesces k single-source RPQ
   queries over one graph into a block-diagonal union automaton and one
   multi-source fixpoint.  Sweep k and compare against evaluating the
   same k queries sequentially (k product builds, k fixpoints).  The
   acceptance bar: batched beats sequential from k >= 8 concurrent
   queries on one graph.
2. **Service level** — a real :class:`repro.service.QueryService` under
   a threaded client workload: per-stage latency percentiles, batch-size
   distribution, and plan-cache ratios.  Repeated templates must be
   served with zero recompilation (cache hits, not new compiles).
"""

from __future__ import annotations

import threading

import pytest

from repro.datasets.random_graphs import uniform_random_graph
from repro.service import QueryService
from repro.service.plan_cache import compile_rpq_plan

from .conftest import BENCH_SCALE, add_report, defer_report, timed_runs

_LINES: dict[str, list[str]] = {}

QUERIES = ("a b* c", "(a | b)+", "a (b c)*", "(a | c) b? c")


def _log(section: str, line: str) -> None:
    _LINES.setdefault(section, []).append(line)


def _graph(n: int, seed: int = 31):
    return uniform_random_graph(n, 4 * n, labels=("a", "b", "c"), seed=seed)


class TestBatchedVsSequential:
    @pytest.mark.parametrize("k", [1, 2, 4, 8, 16])
    def test_batch_sweep(self, benchmark, k):
        """One batched fixpoint vs k sequential single-query runs."""
        import repro
        from repro.rpq.engine import rpq_reach_batch

        cubool_ctx = repro.Context(backend="cubool")
        n = max(96, int(256 * BENCH_SCALE))
        graph = _graph(n)
        # Precompiled plans isolate evaluation cost from parsing (the
        # service's plan cache amortizes compilation separately).
        plans = [compile_rpq_plan(q).nfa for q in QUERIES]
        queries = [plans[i % len(plans)] for i in range(k)]
        sources = [(7 * i + 3) % n for i in range(k)]

        seq_results = []

        def sequential():
            seq_results.clear()
            for q, s in zip(queries, sources):
                seq_results.extend(
                    rpq_reach_batch(graph, [q], [s], cubool_ctx)
                )

        batch_results = []

        def batched():
            batch_results.clear()
            batch_results.extend(
                rpq_reach_batch(graph, queries, sources, cubool_ctx)
            )

        seq_mean, _ = timed_runs(sequential, runs=3)
        batch_mean, _ = timed_runs(batched, runs=3)
        assert batch_results == seq_results, "batched answers must be identical"

        speedup = seq_mean / max(batch_mean, 1e-9)
        _log(
            "sweep",
            f"n={n} k={k:3d} sequential={seq_mean * 1e3:9.2f} ms "
            f"batched={batch_mean * 1e3:9.2f} ms speedup={speedup:6.2f}x",
        )
        # Acceptance: batching must win on >= 8 concurrent queries.
        if k >= 8:
            assert speedup > 1.0, f"batched slower than sequential at k={k}"
        cubool_ctx.finalize()
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)


class TestServiceWorkload:
    def test_threaded_service_latency(self, benchmark):
        """End-to-end service numbers for the E12 report table."""
        n = max(96, int(256 * BENCH_SCALE))
        graph = _graph(n)
        n_clients, per_client = 4, 24

        with QueryService(workers=3, max_batch=8, queue_limit=512) as service:
            service.register_graph("bench", graph, residency="auto")

            def client(cid: int) -> None:
                tickets = [
                    service.submit_reach(
                        "bench",
                        QUERIES[(cid + i) % len(QUERIES)],
                        source=(cid * 13 + 5 * i) % n,
                        timeout=120.0,
                    )
                    for i in range(per_client)
                ]
                for t in tickets:
                    t.result(timeout=120.0)

            threads = [
                threading.Thread(target=client, args=(cid,))
                for cid in range(n_clients)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

            snap = service.stats()

        total = n_clients * per_client
        assert snap.counters["completed"] == total
        # Zero recompilation for repeated templates: every request past
        # the first occurrence of each template is a plan-cache hit.
        assert snap.plan_cache["misses"] == len(QUERIES)
        assert snap.plan_cache["hits"] == total - len(QUERIES)

        _log("service", f"workload: {n_clients} clients x {per_client} queries, "
                        f"graph n={n}, 3 workers, max_batch=8")
        for line in snap.render().splitlines():
            _log("service", line)
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def _report():
    if not _LINES:
        return
    blocks = []
    if "sweep" in _LINES:
        blocks.append(
            "1. batched multi-source fixpoint vs sequential evaluation\n"
            "(k same-graph RPQ queries; acceptance: speedup > 1 at k >= 8)\n"
            + "\n".join(_LINES["sweep"])
        )
    if "service" in _LINES:
        blocks.append(
            "2. concurrent query service under threaded load\n"
            + "\n".join(_LINES["service"])
        )
    add_report("E12_service_batching", "\n\n".join(blocks))


defer_report(_report)

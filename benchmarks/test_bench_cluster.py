"""E16 — extension: replication catch-up throughput and routed reads.

The `repro.cluster` subsystem ships the primary's WAL frames verbatim
to read replicas (docs/CLUSTER.md).  Two questions matter for the
deployment story this PR claims:

* **catch-up throughput** — a follower bootstrapping from the newest
  snapshot must drain the primary's committed backlog at a rate bounded
  by delta-apply cost, not by the wire protocol.  We append a batch of
  committed versions before the follower connects and measure
  versions/s (and edges/s) from connect to convergence.
* **routed read cost** — with a :class:`~repro.cluster.ReadRouter`
  attached, default reads hop to a replica over TCP while
  ``route="primary"`` executes in-process.  The wire hop costs a
  round-trip; the benchmark records the replica-routed latency next to
  the local one so the overhead is a measured number, not folklore.

Both sections run real processes' worth of machinery (sockets, shipper
threads, follower apply loop) inside one process — timing-stable and
scale-aware via ``REPRO_BENCH_SCALE``.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

import numpy as np
import pytest

from repro.cluster import ClusterFollower, ClusterPrimary, ReadRouter
from repro.datasets.random_graphs import uniform_random_graph
from repro.service import QueryService

from .conftest import BENCH_SCALE, add_report, defer_report, timed_runs

QUERY = "(a | b)+"
_RESULTS: dict[str, dict] = {}


def _scaled(x: int, floor: int = 32) -> int:
    return max(floor, int(x * BENCH_SCALE))


def _wait_for(predicate, *, timeout=60.0, poll=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(poll)
    return bool(predicate())


class TestReplication:
    def test_catchup_throughput(self, benchmark):
        n = _scaled(256)
        versions = _scaled(120, floor=20)
        batch = 8
        rng = np.random.default_rng(0xE16)
        graph = uniform_random_graph(n, 3 * n, labels=("a", "b"), seed=16)
        with tempfile.TemporaryDirectory() as root:
            with QueryService(workers=1, store_root=Path(root)) as svc:
                svc.register_graph("g", graph)
                svc.persist_graph("g")
                primary = ClusterPrimary(svc, heartbeat=0.2).start()
                try:
                    # Committed backlog: `versions` transactions of
                    # `batch` edges each, all durable before any
                    # follower shows up.
                    top = 0
                    for _ in range(versions):
                        edges = list(
                            zip(
                                rng.integers(0, n, batch).tolist(),
                                rng.integers(0, n, batch).tolist(),
                            )
                        )
                        top = svc.add_edges("g", "a", edges)
                    t0 = time.perf_counter()
                    with ClusterFollower(
                        Path(root),
                        primary.address,
                        workers=1,
                        heartbeat=0.2,
                    ).start() as follower:
                        assert follower.wait_applied("g", top, timeout=120.0)
                        elapsed = time.perf_counter() - t0
                finally:
                    primary.close()
        _RESULTS["catchup"] = {
            "n": n,
            "versions": versions,
            "edges": versions * batch,
            "seconds": elapsed,
            "versions_per_s": versions / max(elapsed, 1e-9),
            "edges_per_s": versions * batch / max(elapsed, 1e-9),
        }
        benchmark.extra_info.update(_RESULTS["catchup"])
        benchmark(lambda: None)  # timing captured above (one-shot setup)

    def test_routed_read_latency(self, benchmark):
        n = _scaled(256)
        graph = uniform_random_graph(n, 3 * n, labels=("a", "b"), seed=17)
        with tempfile.TemporaryDirectory() as root:
            with QueryService(workers=1, store_root=Path(root)) as svc:
                svc.register_graph("g", graph)
                svc.persist_graph("g")
                primary = ClusterPrimary(svc, heartbeat=0.2).start()
                router = ReadRouter(svc, primary, max_staleness=8)
                svc.attach_router(router)
                try:
                    with ClusterFollower(
                        Path(root),
                        primary.address,
                        workers=1,
                        heartbeat=0.2,
                    ).start() as follower:
                        v = svc.add_edges("g", "a", [(0, 1)])
                        assert follower.wait_applied("g", v, timeout=60.0)
                        # Answers must agree before either path is timed.
                        local = svc.reach("g", QUERY, source=0, route="primary")
                        routed = svc.reach("g", QUERY, source=0, min_version=v)
                        assert routed == local
                        assert router.last_route is not None
                        _, replica_best = timed_runs(
                            lambda: svc.reach("g", QUERY, source=0), runs=5
                        )
                        _, primary_best = timed_runs(
                            lambda: svc.reach(
                                "g", QUERY, source=0, route="primary"
                            ),
                            runs=5,
                        )
                        benchmark(lambda: svc.reach("g", QUERY, source=0))
                finally:
                    svc.detach_router()
                    primary.close()
        _RESULTS["routed"] = {
            "n": n,
            "replica_best": replica_best,
            "primary_best": primary_best,
            "hop_overhead": replica_best - primary_best,
        }


def _report():
    if not _RESULTS:
        return
    lines = ["E16: WAL-shipping replication (repro.cluster)", ""]
    cu = _RESULTS.get("catchup")
    if cu:
        lines += [
            f"catch-up: {cu['versions']} versions ({cu['edges']} edges) "
            f"drained in {cu['seconds'] * 1e3:.1f} ms "
            f"= {cu['versions_per_s']:.0f} versions/s, "
            f"{cu['edges_per_s']:.0f} edges/s (n={cu['n']})",
        ]
    ro = _RESULTS.get("routed")
    if ro:
        lines += [
            f"routed read (n={ro['n']}): replica {ro['replica_best'] * 1e3:.2f} ms "
            f"vs primary {ro['primary_best'] * 1e3:.2f} ms "
            f"(wire hop {ro['hop_overhead'] * 1e3:+.2f} ms)",
        ]
    add_report("E16_cluster", "\n".join(lines) + "\n")


defer_report(_report)

"""E2 — Table II: the RPQ query templates, with compilation statistics.

The paper's Table II lists the 28 query templates.  Beyond reproducing
the list, this benchmark compiles every template through all three
automaton constructions and reports the resulting state counts — the
quantity that sizes the Kronecker product (k·n) and therefore drives
every RPQ timing in E3/E4.
"""

from __future__ import annotations

import pytest

from repro.automata import determinize, glushkov_nfa, minimize, parse_regex, thompson_nfa
from repro.datasets import RPQ_TEMPLATES, instantiate_template

from .conftest import add_report, defer_report

_STATS: dict[str, tuple] = {}

_SYMBOLS = ["a", "b", "c", "d", "e", "f"]


@pytest.mark.parametrize("name", sorted(RPQ_TEMPLATES))
def test_compile_template(benchmark, name):
    regex = instantiate_template(name, _SYMBOLS)

    def compile_all():
        node = parse_regex(regex)
        g = glushkov_nfa(node)
        t = thompson_nfa(node)
        m = minimize(determinize(g))
        return node, g, t, m

    node, g, t, m = benchmark.pedantic(compile_all, rounds=3, iterations=1)
    # Sanity: all constructions accept/reject the empty word identically.
    assert g.accepts(()) == t.accepts(()) == m.accepts(()) == node.nullable()
    _STATS[name] = (regex, g.n, t.n, m.n, g.num_transitions)


def _report():
    if not _STATS:
        return
    lines = [
        "Table II analogue — query templates and automaton sizes",
        "(states: Glushkov / Thompson+ε-elim / minimal DFA; the Glushkov",
        " count is positions+1 and sizes the Kronecker product in E3/E4)",
        "",
        f"{'name':8s} {'template':42s} {'glu':>4s} {'tho':>4s} {'min':>4s} {'edges':>6s}",
    ]
    for name in sorted(_STATS):
        regex, gn, tn, mn, edges = _STATS[name]
        lines.append(
            f"{name:8s} {regex:42s} {gn:4d} {tn:4d} {mn:4d} {edges:6d}"
        )
    add_report("E2_query_templates", "\n".join(lines))


defer_report(_report)

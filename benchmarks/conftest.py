"""Shared benchmark infrastructure.

Every experiment file registers paper-style report tables through
:func:`add_report`; a session-finish hook writes them to
``benchmarks/reports/<experiment>.txt`` and echoes them to the terminal,
so ``pytest benchmarks/ --benchmark-only | tee bench_output.txt``
captures both the pytest-benchmark timing table and the reproduced
paper tables.

Scale: ``REPRO_BENCH_SCALE`` (default 1.0) multiplies the dataset
scales; the defaults run the whole suite in minutes on one CPU core
(the simulated device is a vectorized-NumPy executor, so absolute
numbers are CPU times — shapes and ratios are the reproduction target).
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import numpy as np
import pytest

import repro

REPORTS_DIR = Path(__file__).parent / "reports"

#: experiment id -> list of text blocks
_REPORTS: dict[str, list[str]] = {}

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def add_report(experiment: str, block: str) -> None:
    """Queue a report block for ``experiment`` (written at session end)."""
    _REPORTS.setdefault(experiment, []).append(block)


#: Deferred report builders, invoked at session end — after all
#: benchmark tests ran — so reports see the full result dictionaries
#: even under ``--benchmark-only`` (which skips non-benchmark tests).
_DEFERRED: list = []


def defer_report(builder) -> None:
    """Register a zero-arg callable that emits reports via add_report."""
    _DEFERRED.append(builder)


def timed_runs(fn, *, runs: int = 5) -> tuple[float, float]:
    """(mean, best) wall-clock seconds over ``runs`` calls — the paper
    averages index-creation time over 5 runs."""
    times = []
    for _ in range(runs):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return float(np.mean(times)), float(min(times))


def measure_op_memory(ctx: repro.Context, fn):
    """Run ``fn`` once and return (result, peak_bytes_over_live)."""
    live = ctx.device.arena.live_bytes
    ctx.device.arena.reset_peak()
    result = fn()
    peak = ctx.device.arena.peak_bytes - live
    return result, peak


def pytest_sessionfinish(session, exitstatus):
    for builder in _DEFERRED:
        try:
            builder()
        except Exception as exc:  # pragma: no cover - report best-effort  # reprolint: disable=R4
            add_report("errors", f"report builder failed: {exc!r}")
    if not _REPORTS:
        return
    REPORTS_DIR.mkdir(exist_ok=True)
    tw = None
    try:
        tw = session.config.get_terminal_writer()
    except Exception:  # pytest internals, not the repro taxonomy  # reprolint: disable=R4
        pass
    for experiment, blocks in sorted(_REPORTS.items()):
        text = "\n\n".join(blocks) + "\n"
        (REPORTS_DIR / f"{experiment}.txt").write_text(text)
        banner = f"\n{'=' * 78}\nREPORT {experiment}\n{'=' * 78}\n"
        if tw is not None:
            tw.write(banner + text)
        else:  # pragma: no cover - fallback
            print(banner + text)


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return BENCH_SCALE

"""E7 — all-paths extraction statistics (the paper's §CFPQ-Results text).

The paper extracts all paths of length ≤ 20 between reachable pairs
from the Tns index on *go* and *eclass_514en* with query G1, reporting
per-pair mean extraction time, the maximum, and path counts ("the
average number of paths between two vertices is 184" for go, "3" for
eclass).

We reproduce on the go-like and eclass-like generators: build the
tensor index once, sample reachable pairs, extract with the paper's
limits, and report the same statistics.  Shape expectation: the go-like
graph yields far more paths per pair than the eclass-like graph (its
hierarchy is denser and more ambiguous), and extraction time scales
with the number of paths found.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

import repro
from repro.cfpq import extract_paths, tensor_cfpq
from repro.datasets import rdf_like_graph
from repro.datasets.queries_cfpq import query_g1

from .conftest import BENCH_SCALE, add_report, defer_report

GRAPHS = {
    "go~": ("go", 0.3),
    "eclass~": ("eclass", 0.3),
}

MAX_LEN = 20
MAX_PATHS = 64
SAMPLE_PAIRS = 25

_STATS: dict[str, dict] = {}


@pytest.mark.parametrize("graph_name", sorted(GRAPHS))
def test_extraction(benchmark, graph_name):
    preset, scale = GRAPHS[graph_name]
    graph = rdf_like_graph(preset, scale=scale * BENCH_SCALE, seed=13).with_inverses(
        labels=["subClassOf", "type"]
    )
    ctx = repro.Context(backend="cubool")
    index = tensor_cfpq(graph, query_g1(), ctx)
    pairs = sorted(index.pairs())
    rng = np.random.default_rng(0)
    if len(pairs) > SAMPLE_PAIRS:
        picks = [pairs[i] for i in rng.choice(len(pairs), SAMPLE_PAIRS, replace=False)]
    else:
        picks = pairs

    times: list[float] = []
    counts: list[int] = []

    def extract_all():
        times.clear()
        counts.clear()
        for (u, v) in picks:
            t0 = time.perf_counter()
            paths = extract_paths(
                index, u, v, max_paths=MAX_PATHS, max_length=MAX_LEN
            )
            times.append(time.perf_counter() - t0)
            counts.append(len(paths))

    benchmark.pedantic(extract_all, rounds=1, iterations=1)
    _STATS[graph_name] = {
        "pairs_total": len(pairs),
        "pairs_sampled": len(picks),
        "mean_time_s": float(np.mean(times)) if times else 0.0,
        "max_time_s": float(np.max(times)) if times else 0.0,
        "mean_paths": float(np.mean(counts)) if counts else 0.0,
        "max_paths": int(np.max(counts)) if counts else 0,
        "capped_pairs": int(sum(1 for c in counts if c >= MAX_PATHS)),
    }
    index.free()
    ctx.finalize()


def _report():
    if not _STATS:
        return
    lines = [
        "E7 — all-paths extraction from the Tns index (G1, length <= "
        f"{MAX_LEN}, <= {MAX_PATHS} paths/pair, {SAMPLE_PAIRS} sampled pairs)",
        "",
        f"{'graph':10s} {'pairs':>7s} {'mean t(s)':>10s} {'max t(s)':>9s} "
        f"{'mean paths':>11s} {'max paths':>10s} {'capped':>7s}",
    ]
    for name, s in sorted(_STATS.items()):
        lines.append(
            f"{name:10s} {s['pairs_total']:7d} {s['mean_time_s']:10.4f} "
            f"{s['max_time_s']:9.4f} {s['mean_paths']:11.1f} "
            f"{s['max_paths']:10d} {s['capped_pairs']:7d}"
        )
    go = _STATS.get("go~")
    ec = _STATS.get("eclass~")
    if go and ec:
        lines.append("")
        lines.append(
            "shape check: go-like yields more paths/pair than eclass-like: "
            f"{go['mean_paths']:.1f} vs {ec['mean_paths']:.1f} -> "
            f"{go['mean_paths'] > ec['mean_paths']} "
            "(paper: 184 vs 3 on the full graphs)"
        )
    add_report("E7_path_extraction", "\n".join(lines))


defer_report(_report)

"""E1 + E5 — reproduce the dataset-statistics tables (Table I, Table III).

The paper's tables list vertex/edge/per-relation counts of the
evaluation graphs.  Our generators target the same structure at 1/100
scale; this benchmark generates every preset, measures generation time,
and prints the tables with the published targets alongside for
comparison (the ratio columns should hover near the configured scale).
"""

from __future__ import annotations

import pytest

from repro.datasets import (
    ALIAS_PRESETS,
    LUBM_PRESETS,
    RDF_PRESETS,
    format_stats_table,
    graph_stats,
    lubm_like_graph,
    memory_alias_graph,
    rdf_like_graph,
)

from .conftest import BENCH_SCALE, add_report, defer_report

#: Published Table I targets (vertices, edges) for the LUBM series.
LUBM_PAPER = {
    "LUBM1k": (120_926, 484_646),
    "LUBM3.5k": (358_434, 1_449_711),
    "LUBM5.9k": (596_760, 2_416_513),
    "LUBM1M": (1_188_340, 4_820_728),
    "LUBM1.7M": (1_780_956, 7_228_358),
    "LUBM2.3M": (2_308_385, 9_369_511),
}

#: Published Table III targets: (V, E, #sco, #type, #bt, #a, #d).
CFPQ_PAPER = {
    "eclass": (239_111, 523_727, 90_512, 72_517, 0, 0, 0),
    "enzyme": (48_815, 109_695, 8_163, 14_989, 0, 0, 0),
    "geospecies": (450_609, 2_201_532, 0, 89_062, 20_867, 0, 0),
    "go": (272_770, 534_311, 90_512, 58_483, 0, 0, 0),
    "go-hierarchy": (45_007, 980_218, 490_109, 0, 0, 0, 0),
    "taxonomy": (5_728_398, 14_922_125, 2_112_637, 2_508_635, 0, 0, 0),
    "arch": (3_448_422, 5_940_484, 0, 0, 0, 671_295, 2_298_947),
    "crypto": (3_464_970, 5_976_774, 0, 0, 0, 678_408, 2_309_979),
    "drivers": (4_273_803, 7_415_538, 0, 0, 0, 858_568, 2_849_201),
    "fs": (4_177_416, 7_218_746, 0, 0, 0, 824_430, 2_784_943),
}

_STATS: dict[str, dict] = {}


@pytest.mark.parametrize("preset", sorted(LUBM_PRESETS))
def test_generate_lubm(benchmark, preset):
    scale = 0.25 * BENCH_SCALE
    graph = benchmark.pedantic(
        lambda: lubm_like_graph(preset, scale=scale, seed=1), rounds=1, iterations=1
    )
    _STATS[preset] = graph_stats(graph)


@pytest.mark.parametrize("preset", sorted(RDF_PRESETS))
def test_generate_rdf(benchmark, preset):
    scale = 0.5 * BENCH_SCALE
    graph = benchmark.pedantic(
        lambda: rdf_like_graph(preset, scale=scale, seed=1), rounds=1, iterations=1
    )
    _STATS[preset] = graph_stats(
        graph, labels_of_interest=["subClassOf", "type", "broaderTransitive"]
    )


@pytest.mark.parametrize("preset", sorted(ALIAS_PRESETS))
def test_generate_alias(benchmark, preset):
    scale = 0.1 * BENCH_SCALE
    graph = benchmark.pedantic(
        lambda: memory_alias_graph(preset, scale=scale, seed=1), rounds=1, iterations=1
    )
    _STATS[preset] = graph_stats(graph, labels_of_interest=["a", "d"])


def _report():
    if not _STATS:
        return
    lubm_rows = {}
    for name, (v, e) in LUBM_PAPER.items():
        got = _STATS.get(name)
        if got:
            lubm_rows[name] = {
                "#V (gen)": got["vertices"],
                "#E (gen)": got["edges"],
                "#V (paper)": v,
                "#E (paper)": e,
                "E/V gen": got["edges"] / max(1, got["vertices"]),
                "E/V paper": e / v,
            }
    if lubm_rows:
        add_report(
            "E1_dataset_tables",
            "Table I analogue — LUBM-like series (generated vs published):\n"
            + format_stats_table(
                lubm_rows,
                ["#V (gen)", "#E (gen)", "#V (paper)", "#E (paper)", "E/V gen", "E/V paper"],
            ),
        )

    cfpq_rows = {}
    for name, (v, e, sco, typ, bt, a, d) in CFPQ_PAPER.items():
        got = _STATS.get(name)
        if got:
            cfpq_rows[name] = {
                "#V": got["vertices"],
                "#E": got["edges"],
                "#sco": got.get("#subClassOf", 0),
                "#type": got.get("#type", 0),
                "#bt": got.get("#broaderTransitive", 0),
                "#a": got.get("#a", 0),
                "#d": got.get("#d", 0),
                "#V paper": v,
                "#E paper": e,
            }
    if cfpq_rows:
        add_report(
            "E5_dataset_tables",
            "Table III analogue — CFPQ graphs (generated, with paper targets):\n"
            + format_stats_table(
                cfpq_rows,
                ["#V", "#E", "#sco", "#type", "#bt", "#a", "#d", "#V paper", "#E paper"],
            ),
        )


defer_report(_report)

"""E10 (extension) — multi-device row-block distribution.

Not a paper artifact: the paper's conclusion names multi-GPU support as
future work, so this experiment characterizes the 1-D layout the
`repro.distributed` extension implements — per-device nnz balance under
skewed inputs and the replicated-B memory overhead — the two quantities
a real multi-GPU port must budget.  Results are answer-checked against
the single-device run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import power_law_graph, uniform_random_graph
from repro.distributed import DevicePool

from .conftest import BENCH_SCALE, add_report, defer_report

_ROWS: list[str] = []


def _edges(graph):
    out = []
    for pairs in graph.edges.values():
        out.extend(pairs)
    arr = np.asarray(out, dtype=np.int64)
    return arr[:, 0], arr[:, 1]


@pytest.mark.parametrize("family", ["uniform", "power-law"])
@pytest.mark.parametrize("n_devices", [1, 2, 4, 8])
def test_distributed_square(benchmark, family, n_devices):
    n = int(1200 * BENCH_SCALE) + 10
    m = int(20000 * BENCH_SCALE) + 20
    graph = (
        uniform_random_graph(n, m, seed=33)
        if family == "uniform"
        else power_law_graph(n, m, seed=33)
    )
    rows, cols = _edges(graph)
    shape = (graph.n, graph.n)

    pool = DevicePool(n_devices=n_devices, backend="cubool")
    da = pool.distribute(rows, cols, shape)

    def square():
        out = da.mxm_replicated(rows, cols, shape)
        nnz = out.nnz
        out.free()
        return nnz

    out_nnz = benchmark.pedantic(square, rounds=2, iterations=1)

    in_blocks = da.block_nnz()
    imbalance = (
        max(in_blocks) / (sum(in_blocks) / len(in_blocks)) if sum(in_blocks) else 1.0
    )
    total_live = sum(
        e["live_bytes"] for e in pool.memory_report().values()
    )
    _ROWS.append(
        f"{family:10s} {n_devices:8d} {sum(in_blocks):10d} {imbalance:10.2f} "
        f"{out_nnz:10d} {total_live / 1024:12.1f}"
    )
    da.free()
    pool.finalize()


def _report():
    if not _ROWS:
        return
    header = (
        "E10 (extension) — multi-device row-block distribution\n"
        "(imbalance = max block nnz / mean block nnz; aggregate live KiB\n"
        " grows with the pool because each device keeps its blocks —\n"
        " B-replication peaks additionally during mxm)\n\n"
        f"{'family':10s} {'devices':>8s} {'input nnz':>10s} {'imbalance':>10s} "
        f"{'out nnz':>10s} {'live KiB':>12s}\n"
    )
    add_report("E10_distributed", header + "\n".join(sorted(_ROWS)))


defer_report(_report)

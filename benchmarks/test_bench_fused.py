"""E13 — the fused accumulate contract, end to end.

The tentpole claim: rewriting the fixpoint inner loops on the fused
``accumulate=`` contract (one arena output buffer seeded with the
accumulator, ``*_into`` kernels, no product temporary) makes the bit
path both faster and allocation-flat.  Three configurations of the same
transitive closure isolate the contributions:

* **unfused** — the pre-fusion pipeline (blocked kernel into a product
  temporary, then an OR merge); the ablation baseline.
* **fused/blocked** — fusion on, Four-Russians off: the fusion-only
  contrast.
* **fused** — the shipped configuration (fusion + autotuned kernel
  choice).

Acceptance: fused ≥ 1.3x over unfused at n=512, d=0.05, and the fused
arena peak is strictly lower.  A second table shows the fused Kronecker
accumulate (the RPQ/tensor-CFPQ product build) against its compose
baseline.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

import repro
from repro.algorithms.closure import transitive_closure

from .conftest import BENCH_SCALE, add_report, defer_report, timed_runs

SPEEDUP_FLOOR = 1.3

_RESULTS: dict[str, dict] = {}

CONFIGS = {
    "unfused": dict(fuse=False, four_russians_min_rows=0),
    "fused/blocked": dict(fuse=True, four_russians_min_rows=0),
    "fused": dict(fuse=True),
}


def _ctx(config: str) -> repro.Context:
    ctx = repro.Context(backend="cubool", hybrid="auto")
    ctx.backend.policy = replace(ctx.backend.policy, **CONFIGS[config])
    return ctx


class TestFusedClosure:
    @pytest.mark.parametrize("config", list(CONFIGS))
    def test_closure(self, benchmark, config):
        n = max(128, int(512 * BENCH_SCALE))
        density = 0.05
        rng = np.random.default_rng(13)
        dense = rng.random((n, n)) < density

        ctx = _ctx(config)
        m = ctx.matrix_from_dense(dense)
        arena = ctx.device.arena
        arena.reset_peak()
        mean, best = timed_runs(lambda: transitive_closure(m).free(), runs=3)
        _RESULTS.setdefault("closure", {})[config] = {
            "n": n,
            "mean": mean,
            "best": best,
            "peak": arena.peak_bytes,
            "kernels": {
                op: dict(c) for op, c in ctx.backend.kernel_counts.items()
            },
        }
        benchmark(lambda: transitive_closure(m).free())
        ctx.finalize()

    def test_fused_speedup_and_peak(self):
        """The acceptance gate: ≥ 1.3x and a lower arena peak."""
        rows = _RESULTS.get("closure", {})
        if len(rows) < len(CONFIGS):
            pytest.skip("run the full closure matrix first")
        fused, unfused = rows["fused"], rows["unfused"]
        speedup = unfused["best"] / max(fused["best"], 1e-9)
        assert fused["peak"] < unfused["peak"], (fused["peak"], unfused["peak"])
        if fused["n"] >= 512:
            assert speedup >= SPEEDUP_FLOOR, f"fused speedup {speedup:.2f}x"


class TestFusedKron:
    @pytest.mark.parametrize("config", ["unfused", "fused"])
    def test_kron_accumulate(self, benchmark, config):
        """The RPQ/tensor-CFPQ product-build shape: small automaton ⊗
        graph, OR-accumulated across labels."""
        k = 12
        n = max(64, int(256 * BENCH_SCALE))
        rng = np.random.default_rng(17)
        r = rng.random((k, k)) < 0.25
        g = rng.random((n, n)) < 0.05

        ctx = _ctx(config)
        mr = ctx.matrix_from_dense(r)
        mg = ctx.matrix_from_dense(g)
        acc = ctx.matrix_empty((k * n, k * n))

        def build():
            out = mr.kron(mg, accumulate=acc)
            out.free()

        arena = ctx.device.arena
        arena.reset_peak()
        mean, best = timed_runs(build, runs=3)
        _RESULTS.setdefault("kron", {})[config] = {
            "n": k * n,
            "mean": mean,
            "best": best,
            "peak": arena.peak_bytes,
        }
        benchmark(build)
        ctx.finalize()


def _report():
    closure = _RESULTS.get("closure", {})
    if closure:
        lines = [
            "E13 — fused accumulate contract: transitive closure "
            f"(n={next(iter(closure.values()))['n']}, d=0.05, hybrid auto)",
            "",
            f"{'config':<16} {'best ms':>9} {'mean ms':>9} "
            f"{'arena peak KiB':>15} {'vs unfused':>11}",
        ]
        base = closure.get("unfused")
        for config, row in closure.items():
            speedup = (
                base["best"] / max(row["best"], 1e-9) if base else float("nan")
            )
            lines.append(
                f"{config:<16} {row['best'] * 1e3:>9.2f} "
                f"{row['mean'] * 1e3:>9.2f} {row['peak'] / 1024:>15.0f} "
                f"{speedup:>10.2f}x"
            )
        fused = closure.get("fused")
        if fused and fused.get("kernels"):
            lines.append("")
            lines.append(f"fused kernel dispatch: {fused['kernels']}")
        add_report("E13_fused", "\n".join(lines) + "\n")
    kron = _RESULTS.get("kron", {})
    if kron:
        lines = [
            "E13 — fused kron-accumulate (automaton ⊗ graph product build, "
            f"product n={next(iter(kron.values()))['n']})",
            "",
            f"{'config':<16} {'best ms':>9} {'arena peak KiB':>15}",
        ]
        for config, row in kron.items():
            lines.append(
                f"{config:<16} {row['best'] * 1e3:>9.2f} "
                f"{row['peak'] / 1024:>15.0f}"
            )
        add_report("E13_fused", "\n".join(lines) + "\n")


defer_report(_report)

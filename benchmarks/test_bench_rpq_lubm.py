"""E3 — Figure 2: RPQ index-creation time over the LUBM series.

The paper evaluates every Table II template over six LUBM sizes and
plots index-creation time per query.  Here the LUBM-like generator
provides three scaled sizes, a representative template subset runs on
each, and the report prints the figure's data as a (query × graph)
table of mean times over 5 runs (the paper's averaging).

Shape expectations from the paper: chain queries (Q11 family, Q2) stay
fast on every size; the heavy alternation-plus-closure template Q14 is
the slowest; time grows with graph size for every query.
"""

from __future__ import annotations

import pytest

import repro
from repro.datasets import instantiate_template, lubm_like_graph
from repro.rpq import rpq_index

from .conftest import BENCH_SCALE, add_report, defer_report, timed_runs

GRAPHS = {
    "LUBM1k~": 0.12,
    "LUBM3.5k~": 0.36,
    "LUBM5.9k~": 0.6,
}

#: Template -> symbols drawn from the LUBM schema's frequent relations.
QUERIES = {
    "Q1": ["takesCourse"],
    "Q2": ["advisor", "memberOf"],
    "Q4_3": ["memberOf", "worksFor", "subOrganizationOf"],
    "Q5": ["memberOf", "subOrganizationOf", "type"],
    "Q9_2": ["advisor", "teacherOf"],
    "Q11_3": ["advisor", "worksFor", "subOrganizationOf"],
    "Q12": ["advisor", "worksFor", "memberOf", "subOrganizationOf"],
    "Q14": [
        "advisor",
        "worksFor",
        "memberOf",
        "subOrganizationOf",
        "teacherOf",
        "takesCourse",
    ],
}

_GRAPH_CACHE: dict[str, object] = {}
_TIMES: dict[tuple[str, str], float] = {}


def _graph(name):
    if name not in _GRAPH_CACHE:
        _GRAPH_CACHE[name] = lubm_like_graph(
            "LUBM1k", scale=GRAPHS[name] * BENCH_SCALE, seed=17
        )
    return _GRAPH_CACHE[name]


@pytest.mark.parametrize("graph_name", sorted(GRAPHS))
@pytest.mark.parametrize("query_name", sorted(QUERIES))
def test_index_creation(benchmark, graph_name, query_name):
    graph = _graph(graph_name)
    regex = instantiate_template(query_name, QUERIES[query_name])
    ctx = repro.Context(backend="cubool")

    def build():
        rpq_index(graph, regex, ctx).free()

    mean, _ = timed_runs(build, runs=5)
    _TIMES[(query_name, graph_name)] = mean
    benchmark.pedantic(build, rounds=1, iterations=1)
    ctx.finalize()


def _report():
    if not _TIMES:
        return
    graphs = sorted(GRAPHS)
    lines = [
        "Figure 2 analogue — RPQ index creation time (seconds, mean of 5)",
        f"LUBM-like series at scale {BENCH_SCALE} (vertex counts grow left to right)",
        "",
        f"{'query':8s} " + " ".join(f"{g:>10s}" for g in graphs),
    ]
    for query_name in sorted(QUERIES):
        row = [f"{query_name:8s}"]
        for g in graphs:
            t = _TIMES.get((query_name, g))
            row.append(f"{t:10.4f}" if t is not None else f"{'---':>10s}")
        lines.append(" ".join(row))
    lines.append("")
    # Shape checks reported inline.
    try:
        big = graphs[-1]
        q14 = _TIMES[("Q14", big)]
        q11 = _TIMES[("Q11_3", big)]
        lines.append(
            f"shape check: Q14 ({q14:.4f}s) slower than Q11_3 ({q11:.4f}s) "
            f"on {big}: {q14 > q11} (paper: Q14 worst, Q11 fastest)"
        )
        for q in sorted(QUERIES):
            t_small = _TIMES[(q, graphs[0])]
            t_big = _TIMES[(q, graphs[-1])]
            if t_big < t_small * 0.8:
                lines.append(f"  NOTE: {q} did not grow with graph size")
    except KeyError:
        pass
    add_report("E3_rpq_lubm", "\n".join(lines))


defer_report(_report)

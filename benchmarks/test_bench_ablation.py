"""E9 — ablations of the design choices the paper calls out.

1. **SpGEMM row binning** (cuBool): Nsparse's per-bin kernel configs vs
   a single global-table configuration (``use_binning=False``), and a
   coarser bin ladder.  Expected: binning wins on skewed (power-law)
   row distributions and is near-neutral on uniform ones.
2. **Two-pass vs one-pass add**: cuBool's exact-allocation merge path
   vs clBool's single ``nnz(A)+nnz(B)`` merge buffer — time close,
   memory peak clearly separated (the paper's stated trade-off).
3. **Incremental vs from-scratch closure** in the tensor CFPQ loop —
   the paper's "incremental transitive closure is the bottleneck"
   remark, measured.
4. **Sparse vs dense-bit multiply**: the density crossover where the
   word-parallel :class:`BitMatrix` beats the sparse path.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

import repro
from repro.backends.cubool.backend import CuBoolBackend
from repro.backends.clbool.backend import ClBoolBackend
from repro.cfpq import tensor_cfpq
from repro.datasets import power_law_graph, rdf_like_graph, uniform_random_graph
from repro.datasets.queries_cfpq import query_g1
from repro.formats import BitMatrix, BoolCsr

from .conftest import BENCH_SCALE, add_report, defer_report, timed_runs

_LINES: dict[str, list[str]] = {}


def _log(section: str, line: str) -> None:
    _LINES.setdefault(section, []).append(line)


def _edges(graph):
    out = []
    for pairs in graph.edges.values():
        out.extend(pairs)
    return np.asarray(out, dtype=np.int64)


class TestBinning:
    @pytest.mark.parametrize("family", ["uniform", "power-law"])
    def test_binning_on_off(self, benchmark, family):
        n = int(1500 * BENCH_SCALE) + 10
        m = int(30000 * BENCH_SCALE) + 20
        graph = (
            uniform_random_graph(n, m, seed=5)
            if family == "uniform"
            else power_law_graph(n, m, seed=5)
        )
        pairs = _edges(graph)

        results = {}
        for label, kwargs in [
            ("binned (default)", {}),
            ("no binning", {"use_binning": False}),
            ("coarse bins", {"bin_bounds": (128, 8192)}),
        ]:
            be = CuBoolBackend(**kwargs)
            h = be.matrix_from_coo(pairs[:, 0], pairs[:, 1], (graph.n, graph.n))
            mean, _ = timed_runs(lambda: be.mxm(h, h).free(), runs=3)
            live = be.device.arena.live_bytes
            be.device.arena.reset_peak()
            be.mxm(h, h).free()
            peak = be.device.arena.peak_bytes - live
            launches = be.device.counters.kernel_launches
            results[label] = (mean, peak, launches)
            _log(
                "binning",
                f"{family:10s} {label:18s} time={mean * 1e3:8.1f} ms "
                f"peak={peak / 1024:9.1f} KiB launches={launches}",
            )
        benchmark.pedantic(
            lambda: None, rounds=1, iterations=1
        )  # results captured above
        # Global-table configs must allocate more accounted memory than
        # the shared-memory binned path.
        assert results["no binning"][1] >= results["binned (default)"][1]


class TestAddPasses:
    def test_two_pass_vs_one_pass_memory(self, benchmark):
        n = int(2000 * BENCH_SCALE) + 10
        m = int(60000 * BENCH_SCALE) + 20
        graph = uniform_random_graph(n, m, seed=6)
        pairs = _edges(graph)

        def run(be_cls):
            be = be_cls()
            a = be.matrix_from_coo(pairs[:, 0], pairs[:, 1], (graph.n, graph.n))
            b = be.transpose(a)
            mean, _ = timed_runs(lambda: be.ewise_add(a, b).free(), runs=3)
            live = be.device.arena.live_bytes
            be.device.arena.reset_peak()
            out = be.ewise_add(a, b)
            peak = be.device.arena.peak_bytes - live
            result_bytes = out.memory_bytes()
            out.free()
            return mean, peak, result_bytes

        t2, p2, r2 = run(CuBoolBackend)   # two-pass, exact allocation
        t1, p1, r1 = run(ClBoolBackend)   # one-pass, merge buffer
        _log(
            "add-passes",
            f"cubool two-pass: time={t2 * 1e3:7.1f} ms peak={p2 / 1024:9.1f} KiB "
            f"(result {r2 / 1024:.1f} KiB)",
        )
        _log(
            "add-passes",
            f"clbool one-pass: time={t1 * 1e3:7.1f} ms peak={p1 / 1024:9.1f} KiB "
            f"(result {r1 / 1024:.1f} KiB)",
        )
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        # The one-pass merge buffer must dominate the two-pass peak.
        assert p1 > p2


class TestIncrementalClosure:
    def test_incremental_vs_scratch(self, benchmark):
        graph = rdf_like_graph(
            "go", scale=0.3 * BENCH_SCALE, seed=7
        ).with_inverses(labels=["subClassOf", "type"])
        ctx = repro.Context(backend="cubool")
        q = query_g1()

        def run(incremental):
            idx = tensor_cfpq(graph, q, ctx, incremental=incremental)
            pairs = idx.pairs()
            idx.free()
            return pairs

        assert run(True) == run(False)
        t_inc, _ = timed_runs(lambda: run(True), runs=3)
        t_full, _ = timed_runs(lambda: run(False), runs=3)
        _log(
            "incremental-closure",
            f"tensor CFPQ (go~, G1): incremental={t_inc * 1e3:8.1f} ms "
            f"from-scratch={t_full * 1e3:8.1f} ms "
            f"speedup={t_full / max(t_inc, 1e-9):.2f}x",
        )
        benchmark.pedantic(lambda: run(True), rounds=1, iterations=1)
        ctx.finalize()


class TestDenseCrossover:
    @pytest.mark.parametrize("density", [0.001, 0.01, 0.05, 0.2])
    def test_sparse_vs_bitmatrix(self, benchmark, density):
        n = 512
        rng = np.random.default_rng(8)
        d = rng.random((n, n)) < density
        be = CuBoolBackend()
        sparse = be.matrix_from_dense(d)
        bit = BitMatrix.from_dense(d)

        t_sparse, _ = timed_runs(lambda: be.mxm(sparse, sparse).free(), runs=3)
        t_bit, _ = timed_runs(lambda: bit.mxm(bit), runs=3)
        _log(
            "dense-crossover",
            f"density={density:6.3f} sparse={t_sparse * 1e3:8.1f} ms "
            f"bit-matrix={t_bit * 1e3:8.1f} ms "
            f"winner={'bit' if t_bit < t_sparse else 'sparse'}",
        )
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)


class TestAutomatonConstruction:
    def test_rpq_automaton_variants(self, benchmark):
        """Query-compilation strategies: Glushkov (default) vs Thompson+ε
        vs minimized DFA — automaton size drives the product dimension."""
        from repro.datasets import lubm_like_graph
        from repro.rpq import rpq_index

        graph = lubm_like_graph("LUBM1k", scale=0.1 * BENCH_SCALE, seed=9)
        regex = "(advisor | worksFor)+ . (memberOf | subOrganizationOf)*"
        ctx = repro.Context(backend="cubool")
        baseline = None
        for mode in ("glushkov", "thompson", "mindfa"):
            idx = rpq_index(graph, regex, ctx, automaton=mode)
            pairs = idx.pairs()
            if baseline is None:
                baseline = pairs
            assert pairs == baseline, mode
            states = idx.k
            idx.free()
            mean, _ = timed_runs(
                lambda m=mode: rpq_index(graph, regex, ctx, automaton=m).free(),
                runs=3,
            )
            _log(
                "automaton",
                f"{mode:9s} states={states:3d} index={mean * 1e3:8.1f} ms",
            )
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        ctx.finalize()


class TestPathSemantics:
    def test_single_vs_all_paths_extraction(self, benchmark):
        """The paper notes its generic all-paths extraction is orders of
        magnitude slower than Azimov's single-path reconstruction."""
        from repro.cfpq import extract_paths, matrix_cfpq, tensor_cfpq
        from repro.datasets import rdf_like_graph

        graph = rdf_like_graph(
            "go", scale=0.2 * BENCH_SCALE, seed=10
        ).with_inverses(labels=["subClassOf", "type"])
        ctx = repro.Context(backend="cubool")
        tns = tensor_cfpq(graph, query_g1(), ctx)
        mtx = matrix_cfpq(graph, query_g1(), ctx, record_witnesses=True)
        pairs = sorted(tns.pairs())[:20]

        t_all, _ = timed_runs(
            lambda: [
                extract_paths(tns, u, v, max_paths=16, max_length=16)
                for u, v in pairs
            ],
            runs=3,
        )
        t_single, _ = timed_runs(
            lambda: [mtx.extract_single_path(u, v) for u, v in pairs],
            runs=3,
        )
        _log(
            "path-semantics",
            f"all-paths (Tns index):   {t_all * 1e3:9.2f} ms for {len(pairs)} pairs",
        )
        _log(
            "path-semantics",
            f"single-path (Mtx wits):  {t_single * 1e3:9.2f} ms for {len(pairs)} pairs "
            f"(ratio {t_all / max(t_single, 1e-9):.0f}x — paper reports >1000x "
            "on full-size graphs)",
        )
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        tns.free()
        mtx.free()
        ctx.finalize()


def _report():
    if not _LINES:
        return
    blocks = []
    titles = {
        "binning": "1. SpGEMM row binning (cuBool)",
        "add-passes": "2. two-pass (cuBool) vs one-pass (clBool) add",
        "incremental-closure": "3. incremental vs from-scratch closure (Tns CFPQ)",
        "dense-crossover": "4. sparse CSR vs dense bit-matrix multiply",
        "automaton": "5. RPQ query-automaton construction (Glushkov/Thompson/minDFA)",
        "path-semantics": "6. all-paths (Tns) vs single-path (Mtx) extraction",
    }
    for key in (
        "binning",
        "add-passes",
        "incremental-closure",
        "dense-crossover",
        "automaton",
        "path-semantics",
    ):
        if key in _LINES:
            block = titles[key] + "\n" + "\n".join(_LINES[key])
            if key == "dense-crossover":
                block += (
                    "\nmeasured crossover: between d=0.01 and d=0.05 at n=512; "
                    "the hybrid backend dispatches on d*=0.02 by default "
                    "(fine-grained sweep: reports/E11_hybrid_crossover.txt, "
                    "toggle with REPRO_HYBRID)"
                )
            blocks.append(block)
    add_report("E9_ablations", "\n\n".join(blocks))


defer_report(_report)

"""E14 — tiled bit kernels: zero-tile skipping and worker scaling.

The tentpole claim: viewing the flat bit matrix as a grid of 256-bit
tiles with a presence bitmap lets the multiply skip empty tile pairs,
so block-structured operands (the shape closure fixpoints settle into)
pay for their occupied tiles, not the dense grid.  Two axes:

* **Density sweep** — block-diagonal operands at n≥2048, four kernels
  (flat blocked, flat Four-Russians, tiled blocked, tiled
  Four-Russians), measured at the format level so each row is one
  kernel, not a routing decision.  A side table records which kernel
  the hybrid cost model actually picks at each density.
* **Core scaling** — the tiled kernels at 1/2/4/8 workers.  The thread
  pool parallelizes disjoint output tile row-strips under NumPy's
  GIL-releasing word kernels; hosts with one core will honestly report
  ~1.0x (the table carries the host core count).

Acceptance: tiled ≥ 2x over flat blocked at the sweep's low densities,
and 1→4 worker scaling ≥ 1.5x when the host has ≥ 4 cores.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.backends.base import get_backend
from repro.backends.hybrid import HybridBackend, HybridPolicy
from repro.formats.bitmatrix import BitMatrix
from repro.formats.tiled import TiledBitMatrix

from .conftest import BENCH_SCALE, add_report, defer_report, timed_runs

TILED_SPEEDUP_FLOOR = 2.0
SCALING_FLOOR = 1.5
BLOCKS = 8
DENSITIES = (0.01, 0.05, 0.15, 0.4)  # in-block density; overall is /BLOCKS

_RESULTS: dict[str, dict] = {}


def _n() -> int:
    return max(512, int(2048 * BENCH_SCALE))


def _block_diag(n: int, block_density: float, seed: int = 14):
    rng = np.random.default_rng(seed)
    dense = np.zeros((n, n), dtype=bool)
    bs = n // BLOCKS
    for b in range(BLOCKS):
        lo = b * bs
        dense[lo:lo + bs, lo:lo + bs] = rng.random((bs, bs)) < block_density
    return dense


def _kernels(dense):
    """kernel name -> zero-arg runner producing the product words."""
    flat_a = BitMatrix.from_dense(dense)
    tiled_a = TiledBitMatrix(flat_a)
    n = dense.shape[0]

    def flat_blocked():
        out = BitMatrix.empty((n, n))
        out.mxm_into(flat_a, flat_a)
        return out.words

    def flat_fr():
        out = BitMatrix.empty((n, n))
        out.mxm_four_russians_into(flat_a, flat_a)
        return out.words

    def tiled(workers=1, four_russians=False):
        def run():
            out = TiledBitMatrix(BitMatrix.empty((n, n)), scan=False)
            out.mxm_into(
                tiled_a, tiled_a, four_russians=four_russians, workers=workers
            )
            return out.flat.words

        return run

    return {
        "flat blocked": flat_blocked,
        "flat 4-russians": flat_fr,
        "tiled blocked": tiled(),
        "tiled 4-russians": tiled(four_russians=True),
    }, tiled


class TestDensitySweep:
    @pytest.mark.parametrize("density", DENSITIES)
    def test_kernels_agree_and_time(self, benchmark, density):
        dense = _block_diag(_n(), density)
        runners, _ = _kernels(dense)
        reference = None
        row: dict = {"occupancy": None}
        for name, run in runners.items():
            words = run()
            if reference is None:
                reference = words.copy()
            else:
                assert np.array_equal(words, reference), name
            mean, best = timed_runs(run, runs=3)
            row[name] = {"mean": mean, "best": best}
        row["occupancy"] = TiledBitMatrix(BitMatrix.from_dense(dense)).occupancy
        # Which kernel does the hybrid cost model pick here?
        policy = HybridPolicy(mode="bit")
        hb = HybridBackend(inner=get_backend("cubool"), policy=policy)
        rows, cols = np.nonzero(dense)
        a = hb.matrix_from_coo(rows, cols, dense.shape)
        hb._ensure_bit(a)
        row["routed"], _ = hb._bit_mxm_plan(a, a)
        _RESULTS.setdefault("sweep", {})[density] = row
        benchmark(runners["tiled blocked"])

    def test_tiled_beats_flat_at_low_density(self):
        """Acceptance gate: zero-tile skipping pays ≥ 2x where the grid
        is mostly empty (block-diagonal: 8 of 64 tile pairs present)."""
        sweep = _RESULTS.get("sweep", {})
        if len(sweep) < len(DENSITIES):
            pytest.skip("run the full density sweep first")
        for density in DENSITIES[:2]:
            row = sweep[density]
            best_tiled = min(
                row["tiled blocked"]["best"], row["tiled 4-russians"]["best"]
            )
            speedup = row["flat blocked"]["best"] / max(best_tiled, 1e-9)
            assert speedup >= TILED_SPEEDUP_FLOOR, (
                f"tiled {speedup:.2f}x over flat at block density {density}"
            )


class TestCoreScaling:
    WORKER_AXIS = (1, 2, 4, 8)

    @pytest.mark.parametrize("workers", WORKER_AXIS)
    def test_worker_axis(self, benchmark, workers):
        dense = _block_diag(_n(), 0.1)
        _, tiled = _kernels(dense)
        for four_russians, label in ((False, "blocked"), (True, "4-russians")):
            run = tiled(workers=workers, four_russians=four_russians)
            mean, best = timed_runs(run, runs=3)
            _RESULTS.setdefault(f"scaling/{label}", {})[workers] = {
                "mean": mean, "best": best,
            }
        benchmark(tiled(workers=workers))

    def test_scaling_when_cores_available(self):
        scaling = _RESULTS.get("scaling/blocked", {})
        if len(scaling) < len(self.WORKER_AXIS):
            pytest.skip("run the full worker axis first")
        cores = os.cpu_count() or 1
        if cores < 4:
            pytest.skip(f"host has {cores} core(s); scaling gate needs >= 4")
        speedup = scaling[1]["best"] / max(scaling[4]["best"], 1e-9)
        assert speedup >= SCALING_FLOOR, f"1->4 workers {speedup:.2f}x"


def _report():
    n = _n()
    sweep = _RESULTS.get("sweep", {})
    if sweep:
        kernels = (
            "flat blocked", "flat 4-russians",
            "tiled blocked", "tiled 4-russians",
        )
        lines = [
            f"E14 — tiled vs flat bit mxm: block-diagonal n={n}, "
            f"{BLOCKS} blocks (64 tile pairs in the grid, {BLOCKS} present)",
            "",
            f"{'block d':>8} {'occ':>5} "
            + " ".join(f"{k + ' ms':>19}" for k in kernels)
            + f" {'tiled/flat':>11} {'routed':>18}",
        ]
        for density, row in sorted(sweep.items()):
            best_tiled = min(
                row["tiled blocked"]["best"], row["tiled 4-russians"]["best"]
            )
            speedup = row["flat blocked"]["best"] / max(best_tiled, 1e-9)
            lines.append(
                f"{density:>8.2f} {row['occupancy']:>5.2f} "
                + " ".join(
                    f"{row[k]['best'] * 1e3:>19.2f}" for k in kernels
                )
                + f" {speedup:>10.2f}x {row['routed']:>18}"
            )
        lines.append("")
        lines.append(
            "tiled/flat = flat blocked best / best tiled kernel; 'routed' "
            "is the hybrid cost model's pick at that density."
        )
        add_report("E14_tiled", "\n".join(lines) + "\n")
    labels = [k for k in _RESULTS if k.startswith("scaling/")]
    if labels:
        cores = os.cpu_count() or 1
        lines = [
            f"E14 — tiled mxm worker scaling: block-diagonal n={n}, "
            f"block d=0.10, host cores={cores}",
            "",
            f"{'workers':>8} "
            + " ".join(f"{lab.split('/')[1] + ' ms':>16}" for lab in labels)
            + f" {'vs 1 worker':>12}",
        ]
        base = _RESULTS[labels[0]].get(1)
        for w in sorted(_RESULTS[labels[0]]):
            speedup = (
                base["best"] / max(_RESULTS[labels[0]][w]["best"], 1e-9)
                if base else float("nan")
            )
            lines.append(
                f"{w:>8} "
                + " ".join(
                    f"{_RESULTS[lab][w]['best'] * 1e3:>16.2f}"
                    for lab in labels
                )
                + f" {speedup:>11.2f}x"
            )
        lines.append("")
        lines.append(
            "Strips parallelize across threads only while NumPy releases "
            "the GIL; single-core hosts honestly report ~1.0x."
        )
        add_report("E14_tiled", "\n".join(lines) + "\n")


defer_report(_report)

"""E15 — incremental evaluation: answer freshness after a k-edge delta.

The tentpole claim of the `repro.incr` subsystem: after a small edge
delta, restarting the fixpoint from the previous fixed point (masked
semi-naive `incremental_transitive_closure`) re-establishes a fresh
answer in time proportional to the *delta's consequences*, not the
graph.  The contrast is the pre-incremental service behavior: the
version bump invalidates the cache and the next query re-runs
`transitive_closure` from scratch.

Sweep: k ∈ {1, 16, 256} new edges at n ∈ {512, 2048} plus a k = 1 cell
at n = 4096, hybrid auto (the shipped configuration).  Both paths are
verified to produce identical closures before timing.  Acceptance:
≥ 10× lower refresh latency for a single-edge delta on the n ≥ 1024
closure.  Larger deltas are *expected* to cross over — k random edges
bridge up to k block pairs and the "consequences of the delta"
approach the whole matrix, which is exactly why the service tier's
arbitration budget (``max(64, |E|/8)``) routes big deltas to a cold
run.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.algorithms.closure import (
    incremental_transitive_closure,
    transitive_closure,
)

from .conftest import BENCH_SCALE, add_report, defer_report, timed_runs

SPEEDUP_FLOOR = 10.0
#: (n, k) sweep cells.  The big-n cell only runs the single-edge delta
#: (the acceptance case); its larger-k cells are closure-of-everything
#: workloads that add minutes of runtime without adding information
#: beyond the n = 2048 crossover rows.
CELLS = (
    (512, 1),
    (512, 16),
    (512, 256),
    (2048, 1),
    (2048, 16),
    (2048, 256),
    (4096, 1),
)

_RESULTS: dict[tuple[int, int], dict] = {}


def _scaled(n: int) -> int:
    return max(128, int(n * BENCH_SCALE))


def _graph_matrix(ctx, n: int, rng, blocks: int = 8, density: float = 0.04):
    """Block-diagonal random adjacency: 8 communities, 4 % intra-block
    density.  The closure then has persistent structure at every sweep
    size — a uniform out-degree-8 graph closes to the full matrix, at
    which point every delta is a no-op and the benchmark measures
    nothing.  Block structure is also the regime the tiled bit kernels
    (E14) target, so both refresh paths run the shipped fast path."""
    bs = n // blocks
    per_block = int(density * bs * bs)
    rows, cols = [], []
    for i in range(blocks):
        rows.append(rng.integers(0, bs, per_block) + i * bs)
        cols.append(rng.integers(0, bs, per_block) + i * bs)
    return ctx.matrix_from_lists(
        (n, n), np.concatenate(rows), np.concatenate(cols)
    )


def _delta_matrix(ctx, n: int, k: int, rng):
    return ctx.matrix_from_lists(
        (n, n), rng.integers(0, n, k), rng.integers(0, n, k)
    )


class TestIncrementalRefresh:
    @pytest.mark.parametrize(("n_nominal", "k"), CELLS)
    def test_refresh_latency(self, benchmark, n_nominal, k):
        n = _scaled(n_nominal)
        rng = np.random.default_rng(0xE15 + n_nominal + k)
        ctx = repro.Context(backend="cubool", hybrid="auto")
        base = _graph_matrix(ctx, n, rng)
        closure = transitive_closure(base)
        delta = _delta_matrix(ctx, n, k, rng)
        merged = base.ewise_add(delta)

        # Both paths must agree before either is timed.
        warm = incremental_transitive_closure(closure, delta)
        cold = transitive_closure(merged)
        assert warm.nnz == cold.nnz
        warm.free()
        cold.free()

        _, inc_best = timed_runs(
            lambda: incremental_transitive_closure(closure, delta).free(),
            runs=3,
        )
        _, full_best = timed_runs(
            lambda: transitive_closure(merged).free(), runs=3
        )
        _RESULTS[(n_nominal, k)] = {
            "n": n,
            "k": k,
            "incremental": inc_best,
            "full": full_best,
            "closure_nnz": closure.nnz,
        }
        benchmark(
            lambda: incremental_transitive_closure(closure, delta).free()
        )
        for m in (base, closure, delta, merged):
            m.free()
        ctx.finalize()

    def test_single_edge_speedup_gate(self):
        """Acceptance: ≥ 10× for k=1 on the n ≥ 1024 closure (measured
        on the largest swept size; vacuous under a BENCH_SCALE that
        shrinks every cell below n = 1024)."""
        rows = [
            row
            for key, row in _RESULTS.items()
            if isinstance(key, tuple) and key[1] == 1 and row["n"] >= 1024
        ]
        if not rows:
            pytest.skip("no k=1 cell at n >= 1024 (scaled down?)")
        row = max(rows, key=lambda r: r["n"])
        speedup = row["full"] / max(row["incremental"], 1e-9)
        assert speedup >= SPEEDUP_FLOOR, (
            f"single-edge incremental refresh only {speedup:.1f}x "
            f"over full recompute at n={row['n']}"
        )


class TestServiceFreshness:
    """End-to-end: mutation-to-fresh-answer through the service tier,
    overlay + warm start vs the eager/recompute configuration."""

    @staticmethod
    def _labeled_block_graph(n, blocks=8, density=0.04, seed=0xE15):
        """Two-label block-diagonal graph (same regime as the closure
        sweep — a saturating uniform graph makes even the cold eval
        minutes long and measures nothing about freshness)."""
        from repro.graph import LabeledGraph

        rng = np.random.default_rng(seed)
        bs = n // blocks
        per_block = int(density * bs * bs)
        triples = []
        for i in range(blocks):
            rows = rng.integers(0, bs, per_block) + i * bs
            cols = rng.integers(0, bs, per_block) + i * bs
            labels = rng.choice(("a", "b"), per_block)
            triples.extend(
                zip(rows.tolist(), labels.tolist(), cols.tolist())
            )
        return LabeledGraph.from_triples(triples, n=n)

    def test_service_refresh(self, benchmark):
        from repro.service import QueryService

        n = _scaled(512)
        graph = self._labeled_block_graph(n)
        query = "(a | b)+"
        rows = {}
        for mode, overlay in (("incremental", True), ("recompute", False)):
            with QueryService(workers=1, overlay=overlay) as svc:
                svc.register_graph("g", graph)
                svc.pairs("g", query)  # populate cache + fixpoint state
                rng = np.random.default_rng(7)

                def refresh():
                    svc.add_edges("g", "a", [tuple(rng.integers(0, n, 2))])
                    svc.pairs("g", query)

                mean, best = timed_runs(refresh, runs=5)
                counters = svc.stats().counters
                rows[mode] = {
                    "best": best,
                    "mean": mean,
                    "incremental_evals": counters.get("incremental_evals", 0),
                    "full_evals": counters.get("full_evals", 0),
                }
        assert rows["incremental"]["incremental_evals"] >= 5
        assert rows["recompute"]["incremental_evals"] == 0
        _RESULTS["service"] = {"n": n, "rows": rows}
        with QueryService(workers=1) as svc:
            svc.register_graph("g", graph)
            svc.pairs("g", query)
            rng = np.random.default_rng(7)

            def refresh():
                svc.add_edges("g", "a", [tuple(rng.integers(0, n, 2))])
                svc.pairs("g", query)

            benchmark(refresh)


def _report() -> None:
    sweep = {key: row for key, row in _RESULTS.items() if isinstance(key, tuple)}
    if sweep:
        any_row = next(iter(sweep.values()))
        lines = [
            "E15 — incremental refresh latency after a k-edge delta "
            "(masked semi-naive closure restart vs full recompute, "
            "hybrid auto, 8-community block-diagonal graphs at 4% "
            "intra-block density)",
            "",
            f"{'n':>6} {'k':>5} {'incremental ms':>15} {'full ms':>10} "
            f"{'speedup':>9}",
        ]
        for (n_nominal, k), row in sorted(sweep.items()):
            speedup = row["full"] / max(row["incremental"], 1e-9)
            lines.append(
                f"{row['n']:>6} {k:>5} {row['incremental'] * 1e3:>15.2f} "
                f"{row['full'] * 1e3:>10.2f} {speedup:>8.1f}x"
            )
        lines.append("")
        lines.append(
            f"acceptance: k=1 at n>=1024 must be >= {SPEEDUP_FLOOR:.0f}x "
            "(asserted in test_single_edge_speedup_gate)"
        )
        lines.append(
            "large-k cells cross over by design: k random edges bridge "
            "up to k block pairs, the delta's consequences approach the "
            "whole matrix, and the service arbitration budget "
            "(max(64, |E|/8)) routes such deltas to a cold run instead"
        )
        add_report("E15_incremental", "\n".join(lines) + "\n")
    service = _RESULTS.get("service")
    if service:
        rows = service["rows"]
        lines = [
            "E15 — service tier: mutation-to-fresh-answer "
            f"(1-edge delta + all-pairs re-query, n={service['n']}, "
            "overlay/warm-start vs eager rebuild/recompute)",
            "",
            f"{'mode':<14} {'best ms':>9} {'mean ms':>9} "
            f"{'incremental':>12} {'full':>6}",
        ]
        for mode, row in rows.items():
            lines.append(
                f"{mode:<14} {row['best'] * 1e3:>9.2f} "
                f"{row['mean'] * 1e3:>9.2f} {row['incremental_evals']:>12} "
                f"{row['full_evals']:>6}"
            )
        if all(m in rows for m in ("incremental", "recompute")):
            ratio = rows["recompute"]["best"] / max(
                rows["incremental"]["best"], 1e-9
            )
            lines.append("")
            lines.append(f"end-to-end freshness speedup: {ratio:.1f}x")
        add_report("E15_incremental", "\n".join(lines) + "\n")


defer_report(_report)

"""E11 — the hybrid backend's measured sparse/bit crossover.

Two questions the dispatch cost model must answer correctly:

1. **Where is the real crossover?**  Sweep density for a fixed-size
   square multiply, timing always-sparse, always-bit, and the adaptive
   hybrid.  The hybrid must track the winner at every density — never
   slower than always-sparse at low density (beyond noise), and close
   to always-bit once dense.
2. **Does residency pay off end-to-end?**  Transitive closure of a
   dense-ish graph (the acceptance workload: density ≥ 0.05, n ≥ 512)
   under the pure sparse path vs the hybrid, with arena peak memory for
   both — fixpoint intermediates densify fast, so the hybrid should win
   well over 2x while the packed intermediates also shrink the peak.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

import repro
from repro.algorithms.closure import transitive_closure

from .conftest import BENCH_SCALE, add_report, defer_report, timed_runs

_LINES: dict[str, list[str]] = {}

#: Allowed hybrid-vs-sparse slowdown at sparse-favored densities (the
#: dispatcher adds one cost-model evaluation per op; "never slower,
#: within noise").
NOISE_FACTOR = 1.25


def _log(section: str, line: str) -> None:
    _LINES.setdefault(section, []).append(line)


class TestCrossoverSweep:
    @pytest.mark.parametrize(
        "density", [0.001, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2]
    )
    def test_mxm_crossover(self, benchmark, density):
        n = max(64, int(512 * BENCH_SCALE))
        rng = np.random.default_rng(21)
        d = rng.random((n, n)) < density

        times = {}
        routed = "?"
        for mode in ("sparse", "bit", "auto"):
            ctx = repro.Context(backend="cubool", hybrid=mode)
            m = ctx.matrix_from_dense(d)
            if mode == "bit":
                # Pre-pack so the sweep times the kernel, not conversion
                # (the fixpoint workload below pays conversion once).
                ctx.backend._ensure_bit(m.handle)
            mean, _ = timed_runs(lambda: m.mxm(m).free(), runs=3)
            times[mode] = mean
            if mode == "auto":
                counts = ctx.backend.dispatch_counts["mxm"]
                routed = max(counts, key=counts.get)
            ctx.finalize()
        _log(
            "sweep",
            f"n={n} density={density:6.3f} "
            f"sparse={times['sparse'] * 1e3:8.1f} ms "
            f"bit={times['bit'] * 1e3:8.1f} ms "
            f"hybrid={times['auto'] * 1e3:8.1f} ms "
            f"(routed {routed})",
        )
        # The adaptive path must track the winner at both extremes.
        assert times["auto"] <= max(times["sparse"], times["bit"]) * NOISE_FACTOR
        if density <= 0.005:
            assert times["auto"] <= times["sparse"] * NOISE_FACTOR
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)


class TestClosureSpeedup:
    def test_transitive_closure_densifying(self, benchmark):
        """Acceptance: >= 2x on closure of a dense-ish graph, with
        memory accounted on both paths."""
        n = max(128, int(512 * BENCH_SCALE))
        density = 0.05
        rng = np.random.default_rng(22)
        adj = rng.random((n, n)) < density

        results = {}
        for mode, label in ((False, "sparse-only"), ("auto", "hybrid")):
            ctx = repro.Context(backend="cubool", hybrid=mode)
            m = ctx.matrix_from_dense(adj)
            live = ctx.device.arena.live_bytes
            ctx.device.arena.reset_peak()
            # One timed run per path: the gap is orders of magnitude, so
            # run-to-run noise is irrelevant (and the sparse-only run
            # takes tens of seconds at this density).
            t0 = time.perf_counter()
            closure = transitive_closure(m)
            mean = time.perf_counter() - t0
            peak = ctx.device.arena.peak_bytes - live
            nnz = closure.nnz
            closure.free()
            results[label] = (mean, peak, nnz)
            _log(
                "closure",
                f"{label:12s} n={n} d={density} time={mean * 1e3:9.1f} ms "
                f"op-peak={peak / 1024:9.1f} KiB closure-nnz={nnz}",
            )
            ctx.finalize()

        assert results["sparse-only"][2] == results["hybrid"][2], "pattern mismatch"
        speedup = results["sparse-only"][0] / max(results["hybrid"][0], 1e-9)
        _log("closure", f"hybrid speedup: {speedup:.2f}x (acceptance: >= 2x)")
        assert speedup >= 2.0
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    def test_low_density_closure_not_slower(self, benchmark):
        """On a hyper-sparse graph the hybrid must ride the sparse path
        and stay within noise of it."""
        n = max(128, int(1024 * BENCH_SCALE))
        # ~0.5 edges per row: below the percolation threshold, so the
        # closure stays sparse all the way to the fixpoint.
        density = 0.5 / n
        rng = np.random.default_rng(23)
        adj = rng.random((n, n)) < density

        times = {}
        for mode, label in ((False, "sparse-only"), ("auto", "hybrid")):
            ctx = repro.Context(backend="cubool", hybrid=mode)
            m = ctx.matrix_from_dense(adj)
            mean, _ = timed_runs(lambda: transitive_closure(m).free(), runs=3)
            times[label] = mean
            ctx.finalize()

        _log(
            "closure",
            f"hyper-sparse n={n}: sparse-only={times['sparse-only'] * 1e3:8.1f} ms "
            f"hybrid={times['hybrid'] * 1e3:8.1f} ms "
            f"(ratio {times['hybrid'] / max(times['sparse-only'], 1e-9):.2f})",
        )
        assert times["hybrid"] <= times["sparse-only"] * NOISE_FACTOR
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def _report():
    if not _LINES:
        return
    blocks = []
    if "sweep" in _LINES:
        blocks.append(
            "1. mxm density sweep (sparse vs bit vs adaptive hybrid)\n"
            + "\n".join(_LINES["sweep"])
        )
    if "closure" in _LINES:
        blocks.append(
            "2. transitive closure: pure sparse vs hybrid residency\n"
            + "\n".join(_LINES["closure"])
        )
    add_report("E11_hybrid_crossover", "\n\n".join(blocks))


defer_report(_report)

"""E6 — Table IV: CFPQ index creation, tensor (Tns) vs matrix (Mtx).

The paper's table runs the same-generation queries G1/G2 over six RDF
graphs, Geo over geospecies, and MA over four Linux-kernel alias
graphs, comparing the Kronecker-product algorithm against Azimov's
matrix algorithm (5-run means).

Shape expectations from the paper's numbers:
* on **go-hierarchy** Tns clearly beats Mtx (1.43s vs 0.16s there — the
  deep pure-subClassOf hierarchy makes the CNF'd grammar iterate many
  more matrix products);
* on **taxonomy** (and the MA graphs) Mtx wins — Tns pays for computing
  the all-paths index;
* on the small graphs both are fast and close.

Answers are cross-checked (both engines must produce identical pair
sets) — a benchmark that silently computed different answers would be
meaningless.
"""

from __future__ import annotations

import pytest

import repro
from repro.cfpq import matrix_cfpq, tensor_cfpq
from repro.datasets import memory_alias_graph, rdf_like_graph
from repro.datasets.queries_cfpq import (
    query_g1,
    query_g2,
    query_geo,
    query_ma_cfg,
    query_ma_rsm,
)

from .conftest import BENCH_SCALE, add_report, defer_report, timed_runs

RDF_GRAPHS = {
    "eclass~": ("eclass", 0.35),
    "enzyme~": ("enzyme", 1.0),
    "geospecies~": ("geospecies", 0.35),
    "go~": ("go", 0.35),
    "go-hierarchy~": ("go-hierarchy", 0.35),
    "pathways~": ("pathways", 1.0),
    "taxonomy~": ("taxonomy", 0.035),
}

ALIAS_GRAPHS = {
    "arch~": ("arch", 0.01),
    "crypto~": ("crypto", 0.01),
    "drivers~": ("drivers", 0.01),
    "fs~": ("fs", 0.01),
}

_GRAPHS: dict[str, object] = {}
_RESULTS: dict[tuple[str, str, str], float] = {}  # (graph, query, engine)
_PAIR_COUNTS: dict[tuple[str, str], int] = {}


def _rdf(name):
    if name not in _GRAPHS:
        preset, scale = RDF_GRAPHS[name]
        _GRAPHS[name] = rdf_like_graph(
            preset, scale=scale * BENCH_SCALE, seed=31
        ).with_inverses(labels=["subClassOf", "type", "broaderTransitive"])
    return _GRAPHS[name]


def _alias(name):
    if name not in _GRAPHS:
        preset, scale = ALIAS_GRAPHS[name]
        _GRAPHS[name] = memory_alias_graph(preset, scale=scale * BENCH_SCALE, seed=31)
    return _GRAPHS[name]


def _run_both(benchmark, graph, graph_name, query_name, cfg, rsm_query=None):
    ctx = repro.Context(backend="cubool")
    tns_query = rsm_query if rsm_query is not None else cfg

    def run_tns():
        idx = tensor_cfpq(graph, tns_query, ctx)
        pairs = idx.pairs("S")
        idx.free()
        return pairs

    def run_mtx():
        idx = matrix_cfpq(graph, cfg, ctx)
        pairs = idx.pairs("S")
        idx.free()
        return pairs

    tns_pairs = run_tns()
    mtx_pairs = run_mtx()
    assert tns_pairs == mtx_pairs, (
        f"engines disagree on {graph_name}/{query_name}: "
        f"{len(tns_pairs)} vs {len(mtx_pairs)} pairs"
    )
    _PAIR_COUNTS[(graph_name, query_name)] = len(tns_pairs)

    tns_mean, _ = timed_runs(run_tns, runs=3)
    mtx_mean, _ = timed_runs(run_mtx, runs=3)
    _RESULTS[(graph_name, query_name, "Tns")] = tns_mean
    _RESULTS[(graph_name, query_name, "Mtx")] = mtx_mean
    benchmark.pedantic(run_tns, rounds=1, iterations=1)
    ctx.finalize()


@pytest.mark.parametrize("graph_name", sorted(RDF_GRAPHS))
@pytest.mark.parametrize("query_name", ["G1", "G2"])
def test_same_generation(benchmark, graph_name, query_name):
    graph = _rdf(graph_name)
    cfg = query_g1() if query_name == "G1" else query_g2()
    _run_both(benchmark, graph, graph_name, query_name, cfg)


def test_geo_on_geospecies(benchmark):
    graph = _rdf("geospecies~")
    _run_both(benchmark, graph, "geospecies~", "Geo", query_geo())


@pytest.mark.parametrize("graph_name", sorted(ALIAS_GRAPHS))
def test_memory_alias(benchmark, graph_name):
    graph = _alias(graph_name)
    _run_both(
        benchmark, graph, graph_name, "MA", query_ma_cfg(), rsm_query=query_ma_rsm()
    )


def _report():
    if not _RESULTS:
        return
    queries = ["G1", "G2", "Geo", "MA"]
    lines = [
        "Table IV analogue — CFPQ index creation time (seconds, mean of 3)",
        "Tns = tensor/Kronecker all-paths algorithm, Mtx = Azimov matrix",
        "",
        f"{'graph':14s} "
        + " ".join(f"{q + ' Tns':>9s} {q + ' Mtx':>9s}" for q in queries),
    ]
    graph_names = sorted({g for (g, _, _) in _RESULTS})
    for g in graph_names:
        row = [f"{g:14s}"]
        for q in queries:
            tns = _RESULTS.get((g, q, "Tns"))
            mtx = _RESULTS.get((g, q, "Mtx"))
            row.append(f"{tns:9.3f}" if tns is not None else f"{'---':>9s}")
            row.append(f"{mtx:9.3f}" if mtx is not None else f"{'---':>9s}")
        lines.append(" ".join(row))
    lines.append("")
    # Shape checks.
    gh_t = _RESULTS.get(("go-hierarchy~", "G1", "Tns"))
    gh_m = _RESULTS.get(("go-hierarchy~", "G1", "Mtx"))
    if gh_t and gh_m:
        lines.append(
            f"shape check: go-hierarchy G1 Tns {gh_t:.3f}s vs Mtx {gh_m:.3f}s "
            f"-> Tns faster: {gh_t < gh_m} (paper: 0.16 vs 1.43).  NOTE: the"
        )
        lines.append(
            "  paper's Tns ran on GPU while its Mtx baseline was CPU"
            " PyGraphBLAS; on a single shared substrate (ours) both engines"
            " take the same outer-iteration count and Mtx's smaller per-"
            "iteration working set wins — the crossover is a substrate"
            " artifact, not an algorithmic one (see EXPERIMENTS.md)."
        )
    tx_t = _RESULTS.get(("taxonomy~", "G2", "Tns"))
    tx_m = _RESULTS.get(("taxonomy~", "G2", "Mtx"))
    if tx_t and tx_m:
        lines.append(
            f"shape check: taxonomy G2 Tns {tx_t:.3f}s vs Mtx {tx_m:.3f}s "
            f"-> Mtx faster: {tx_m < tx_t} (paper: 3.75 vs 1.56)"
        )
    ma_pairs = [
        (g, _RESULTS.get((g, "MA", "Tns")), _RESULTS.get((g, "MA", "Mtx")))
        for g in sorted(ALIAS_GRAPHS)
    ]
    if all(t and m for _, t, m in ma_pairs):
        mtx_wins = sum(1 for _, t, m in ma_pairs if m < t)
        lines.append(
            f"shape check: Mtx faster on {mtx_wins}/4 alias graphs "
            "(paper: Mtx faster on all four)"
        )
    lines.append("")
    lines.append("answer sizes (|pairs| per graph/query, engines verified equal):")
    for (g, q), c in sorted(_PAIR_COUNTS.items()):
        lines.append(f"  {g:14s} {q:4s} {c}")
    add_report("E6_cfpq_table4", "\n".join(lines))


defer_report(_report)

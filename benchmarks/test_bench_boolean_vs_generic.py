"""E0 — the abstract's headline claim.

    "operations specialized for Boolean matrices can be up to 5 times
     faster and consume up to 4 times less memory than generic, not the
     Boolean optimized, operations from modern libraries"

Workloads: matrix squaring ``M·M`` (the SPbLA evaluation's operation),
element-wise add, and Kronecker product, over graph families with
different row-size distributions.  Contenders: the boolean backends
(cubool = CSR/hash, clbool = COO/ESC) against the generic value-carrying
baseline (float32 and float64 — cuSPARSE/CUSP stand-in).

Reported per (workload, op): time, matrix storage bytes, and operation
peak device memory, plus the generic/boolean ratios.  Expected shape:
boolean wins both axes, with the memory gap widest for cubool (indices
only, shared-memory hash tables) and the float64 baseline worst.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.datasets import (
    grid_graph,
    power_law_graph,
    uniform_random_graph,
    worst_case_bipartite,
)

from .conftest import (
    BENCH_SCALE,
    add_report,
    defer_report,
    measure_op_memory,
    timed_runs,
)

BACKENDS = ("cubool", "clbool", "generic", "generic64")


def _workloads():
    s = BENCH_SCALE
    return {
        "uniform": uniform_random_graph(int(2000 * s) + 10, int(40000 * s) + 20, seed=1),
        "power-law": power_law_graph(int(2000 * s) + 10, int(40000 * s) + 20, seed=1),
        "grid": grid_graph(max(8, int(45 * (s ** 0.5)))),
        "fan-hub": worst_case_bipartite(max(16, int(250 * s))),
    }


_WORKLOADS = _workloads()
_RESULTS: dict[tuple[str, str, str], dict] = {}  # (workload, op, backend)


def _edges(graph):
    out = []
    for pairs in graph.edges.values():
        out.extend(pairs)
    return np.asarray(out, dtype=np.int64)


@pytest.fixture(params=sorted(_WORKLOADS))
def workload(request):
    return request.param


@pytest.fixture(params=BACKENDS)
def backend(request):
    return request.param


def _setup(backend, workload):
    graph = _WORKLOADS[workload]
    ctx = repro.Context(backend=backend)
    pairs = _edges(graph)
    m = ctx.matrix_from_lists((graph.n, graph.n), pairs[:, 0], pairs[:, 1])
    return ctx, m


class TestMxM:
    def test_square(self, benchmark, backend, workload):
        ctx, m = _setup(backend, workload)
        _, peak = measure_op_memory(ctx, lambda: m.mxm(m).free())
        mean, best = timed_runs(lambda: m.mxm(m).free(), runs=3)
        benchmark.extra_info["workload"] = workload
        benchmark.pedantic(lambda: m.mxm(m).free(), rounds=3, iterations=1)
        _RESULTS[(workload, "mxm", backend)] = {
            "time": mean,
            "storage": m.memory_bytes(),
            "peak": peak,
        }
        ctx.finalize()


class TestEwiseAdd:
    def test_add_transpose(self, benchmark, backend, workload):
        ctx, m = _setup(backend, workload)
        mt = m.T
        _, peak = measure_op_memory(ctx, lambda: m.ewise_add(mt).free())
        mean, _ = timed_runs(lambda: m.ewise_add(mt).free(), runs=3)
        benchmark.pedantic(lambda: m.ewise_add(mt).free(), rounds=3, iterations=1)
        _RESULTS[(workload, "add", backend)] = {
            "time": mean,
            "storage": m.memory_bytes(),
            "peak": peak,
        }
        ctx.finalize()


class TestKron:
    def test_kron_tile(self, benchmark, backend, workload):
        """K = tile ⊗ M with a 3x3 tile — a 9x blowup of the pattern."""
        ctx, m = _setup(backend, workload)
        tile = ctx.matrix_from_lists((3, 3), [0, 1, 2, 0], [1, 2, 0, 0])
        _, peak = measure_op_memory(ctx, lambda: tile.kron(m).free())
        mean, _ = timed_runs(lambda: tile.kron(m).free(), runs=3)
        benchmark.pedantic(lambda: tile.kron(m).free(), rounds=3, iterations=1)
        _RESULTS[(workload, "kron", backend)] = {
            "time": mean,
            "storage": m.memory_bytes(),
            "peak": peak,
        }
        ctx.finalize()


def _report_e0():
    """Emit the paper-style comparison table from accumulated results."""
    if not _RESULTS:
        return
    lines = [
        "E0: boolean-specialized vs generic operations",
        f"(scale={BENCH_SCALE}; times are simulated-executor CPU seconds;",
        " ratios are generic/cubool — the paper claims up to 5x time,",
        " up to 4x memory in favour of boolean)",
        "",
        f"{'workload':10s} {'op':5s} {'backend':10s} {'time(ms)':>9s} "
        f"{'storage(KiB)':>13s} {'op peak(KiB)':>13s}",
    ]
    for (workload, op, backend), r in sorted(_RESULTS.items()):
        lines.append(
            f"{workload:10s} {op:5s} {backend:10s} {r['time'] * 1e3:9.1f} "
            f"{r['storage'] / 1024:13.1f} {r['peak'] / 1024:13.1f}"
        )
    lines.append("")
    lines.append(
        f"{'workload':10s} {'op':5s} {'t gen/cubool':>13s} "
        f"{'t gen/best-bool':>16s} {'mem gen64/cubool':>17s}"
    )
    for workload in sorted(_WORKLOADS):
        for op in ("mxm", "add", "kron"):
            try:
                cub = _RESULTS[(workload, op, "cubool")]
                clb = _RESULTS[(workload, op, "clbool")]
                gen = _RESULTS[(workload, op, "generic")]
                gen64 = _RESULTS[(workload, op, "generic64")]
            except KeyError:
                continue
            t_ratio = gen["time"] / max(cub["time"], 1e-9)
            t_best = gen["time"] / max(min(cub["time"], clb["time"]), 1e-9)
            m_ratio = (gen64["storage"] + gen64["peak"]) / max(
                cub["storage"] + cub["peak"], 1
            )
            lines.append(
                f"{workload:10s} {op:5s} {t_ratio:13.2f} {t_best:16.2f} "
                f"{m_ratio:17.2f}"
            )
    add_report("E0_boolean_vs_generic", "\n".join(lines))


defer_report(_report_e0)

"""E0 — the abstract's headline claim.

    "operations specialized for Boolean matrices can be up to 5 times
     faster and consume up to 4 times less memory than generic, not the
     Boolean optimized, operations from modern libraries"

Workloads: matrix squaring ``M·M`` (the SPbLA evaluation's operation),
element-wise add, and Kronecker product, over graph families with
different row-size distributions.  Contenders: the boolean backends
(cubool = CSR/hash, clbool = COO/ESC) against the generic value-carrying
baseline (float32 and float64 — cuSPARSE/CUSP stand-in).

Reported per (workload, op): time, matrix storage bytes, and operation
peak device memory, plus the generic/boolean ratios.  Expected shape:
boolean wins both axes, with the memory gap widest for cubool (indices
only, shared-memory hash tables) and the float64 baseline worst.

E17 — semiring dispatch (rides the same file because it measures the
same boundary from the algebra side): (a) an explicit
``semiring=BOOL_OR_AND`` must route byte-identically to the default on
the hybrid dispatcher (same kernels, same pattern — the bit fast path
stays reserved for the boolean algebra), and the boolean algebra
forced through the generic value backend shows the cost the dispatcher
avoids; (b) MIN_PLUS single-source shortest paths on the sparse value
backend vs the dense reference relaxation at n ≥ 1024.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.datasets import (
    grid_graph,
    power_law_graph,
    uniform_random_graph,
    worst_case_bipartite,
)

from .conftest import (
    BENCH_SCALE,
    add_report,
    defer_report,
    measure_op_memory,
    timed_runs,
)

BACKENDS = ("cubool", "clbool", "generic", "generic64")


def _workloads():
    s = BENCH_SCALE
    return {
        "uniform": uniform_random_graph(int(2000 * s) + 10, int(40000 * s) + 20, seed=1),
        "power-law": power_law_graph(int(2000 * s) + 10, int(40000 * s) + 20, seed=1),
        "grid": grid_graph(max(8, int(45 * (s ** 0.5)))),
        "fan-hub": worst_case_bipartite(max(16, int(250 * s))),
    }


_WORKLOADS = _workloads()
_RESULTS: dict[tuple[str, str, str], dict] = {}  # (workload, op, backend)


def _edges(graph):
    out = []
    for pairs in graph.edges.values():
        out.extend(pairs)
    return np.asarray(out, dtype=np.int64)


@pytest.fixture(params=sorted(_WORKLOADS))
def workload(request):
    return request.param


@pytest.fixture(params=BACKENDS)
def backend(request):
    return request.param


def _setup(backend, workload):
    graph = _WORKLOADS[workload]
    ctx = repro.Context(backend=backend)
    pairs = _edges(graph)
    m = ctx.matrix_from_lists((graph.n, graph.n), pairs[:, 0], pairs[:, 1])
    return ctx, m


class TestMxM:
    def test_square(self, benchmark, backend, workload):
        ctx, m = _setup(backend, workload)
        _, peak = measure_op_memory(ctx, lambda: m.mxm(m).free())
        mean, best = timed_runs(lambda: m.mxm(m).free(), runs=3)
        benchmark.extra_info["workload"] = workload
        benchmark.pedantic(lambda: m.mxm(m).free(), rounds=3, iterations=1)
        _RESULTS[(workload, "mxm", backend)] = {
            "time": mean,
            "storage": m.memory_bytes(),
            "peak": peak,
        }
        ctx.finalize()


class TestEwiseAdd:
    def test_add_transpose(self, benchmark, backend, workload):
        ctx, m = _setup(backend, workload)
        mt = m.T
        _, peak = measure_op_memory(ctx, lambda: m.ewise_add(mt).free())
        mean, _ = timed_runs(lambda: m.ewise_add(mt).free(), runs=3)
        benchmark.pedantic(lambda: m.ewise_add(mt).free(), rounds=3, iterations=1)
        _RESULTS[(workload, "add", backend)] = {
            "time": mean,
            "storage": m.memory_bytes(),
            "peak": peak,
        }
        ctx.finalize()


class TestKron:
    def test_kron_tile(self, benchmark, backend, workload):
        """K = tile ⊗ M with a 3x3 tile — a 9x blowup of the pattern."""
        ctx, m = _setup(backend, workload)
        tile = ctx.matrix_from_lists((3, 3), [0, 1, 2, 0], [1, 2, 0, 0])
        _, peak = measure_op_memory(ctx, lambda: tile.kron(m).free())
        mean, _ = timed_runs(lambda: tile.kron(m).free(), runs=3)
        benchmark.pedantic(lambda: tile.kron(m).free(), rounds=3, iterations=1)
        _RESULTS[(workload, "kron", backend)] = {
            "time": mean,
            "storage": m.memory_bytes(),
            "peak": peak,
        }
        ctx.finalize()


# -- E17: semiring dispatch ---------------------------------------------------

_E17: dict[str, dict] = {}


class TestSemiringDispatch:
    def test_boolean_routing_unchanged(self, benchmark):
        """Explicit BOOL_OR_AND = default routing, kernel for kernel."""
        from repro.backends import get_backend
        from repro.backends.hybrid import HybridBackend, HybridPolicy
        from repro.core.semiring import BOOL_OR_AND

        graph = _WORKLOADS["uniform"]
        pairs = _edges(graph)

        def closure(semiring):
            be = HybridBackend(
                inner=get_backend("cubool"), policy=HybridPolicy(mode="auto")
            )
            cur = be.matrix_from_coo(pairs[:, 0], pairs[:, 1], (graph.n, graph.n))
            t0, times = None, []
            for _ in range(3):
                import time as _time

                t0 = _time.perf_counter()
                step = be.mxm(cur, cur, accumulate=cur, semiring=semiring)
                times.append(_time.perf_counter() - t0)
                cur.free()
                cur = step
            rows, cols = be.matrix_to_coo(cur)
            cur.free()
            return (
                set(zip(rows.tolist(), cols.tolist())),
                {op: dict(ks) for op, ks in be.kernel_counts.items()},
                {op: dict(rs) for op, rs in be.dispatch_counts.items()},
                float(np.mean(times)),
            )

        d_pairs, d_kernels, d_routes, d_time = closure(None)
        e_pairs, e_kernels, e_routes, e_time = closure(BOOL_OR_AND)
        assert e_pairs == d_pairs
        assert e_kernels == d_kernels
        assert e_routes == d_routes
        assert "value" not in {r for rs in e_routes.values() for r in rs}
        benchmark.pedantic(lambda: closure(BOOL_OR_AND), rounds=1, iterations=1)
        _E17["routing"] = {
            "default_ms": d_time * 1e3,
            "explicit_ms": e_time * 1e3,
            "kernels": d_kernels.get("mxm", {}),
            "pairs": len(d_pairs),
        }

    def test_boolean_via_generic(self, benchmark):
        """The boolean algebra forced onto the value backend: same
        answer, value-carrying cost — what the dispatcher avoids."""
        from repro.backends import get_backend
        from repro.core.semiring import BOOL_OR_AND

        graph = _WORKLOADS["uniform"]
        pairs = _edges(graph)
        be = get_backend("generic")
        a = be.matrix_from_coo(pairs[:, 0], pairs[:, 1], (graph.n, graph.n))
        mean, _ = timed_runs(
            lambda: be.mxm(a, a, semiring=BOOL_OR_AND).free(), runs=3
        )
        benchmark.pedantic(
            lambda: be.mxm(a, a, semiring=BOOL_OR_AND).free(),
            rounds=1, iterations=1,
        )
        out = be.mxm(a, a, semiring=BOOL_OR_AND)
        _, _, vals = be.matrix_to_coo_values(out)
        assert np.all(vals == 1.0)  # the arithmetic image stays {0, 1}
        out.free()
        a.free()
        _E17["bool_generic"] = {"time_ms": mean * 1e3}


class TestMinPlusSSSP:
    def test_sparse_vs_dense(self, benchmark):
        """MIN_PLUS Bellman-Ford: sparse value backend vs the dense
        reference relaxation, n >= 1024."""
        from repro.algorithms.shortest_paths import (
            single_source_shortest_paths,
            weight_matrix,
        )
        from repro.core.semiring import MIN_PLUS

        n = max(1024, int(1024 * BENCH_SCALE))
        graph = uniform_random_graph(n, 4 * n, seed=7)
        weights = weight_matrix(graph)

        def dense_sssp():
            dist = np.full((1, n), np.inf)
            dist[0, 0] = 0.0
            for _ in range(n):
                nxt = MIN_PLUS.ewise_add_dense(
                    dist, MIN_PLUS.mxm_dense(dist, weights)
                )
                if np.array_equal(nxt, dist):
                    break
                dist = nxt
            return dist[0]

        sparse_mean, _ = timed_runs(
            lambda: single_source_shortest_paths(weights, 0), runs=3
        )
        dense_mean, _ = timed_runs(dense_sssp, runs=3)
        benchmark.pedantic(
            lambda: single_source_shortest_paths(weights, 0),
            rounds=1, iterations=1,
        )
        got = single_source_shortest_paths(weights, 0)
        want = dense_sssp()
        assert np.array_equal(got, want)
        _E17["sssp"] = {
            "n": n,
            "reachable": int(np.isfinite(got).sum()),
            "sparse_ms": sparse_mean * 1e3,
            "dense_ms": dense_mean * 1e3,
        }


def _report_e17():
    if not _E17:
        return
    lines = [
        "E17: pluggable semiring dispatch",
        f"(scale={BENCH_SCALE}; times are simulated-executor CPU seconds)",
        "",
    ]
    r = _E17.get("routing")
    if r:
        lines += [
            "boolean routing (3-round mxm-accumulate closure, uniform graph):",
            f"  default semiring:       {r['default_ms']:8.1f} ms/round",
            f"  explicit bool-or-and:   {r['explicit_ms']:8.1f} ms/round",
            f"  kernels (identical for both): {r['kernels']}",
            f"  closure pairs: {r['pairs']} — explicit == default, "
            f"no value-route dispatches",
        ]
    g = _E17.get("bool_generic")
    if g and r:
        lines += [
            f"  bool-or-and via generic value backend: "
            f"{g['time_ms']:8.1f} ms (single mxm — the cost the "
            f"dispatcher's boolean fast path avoids)",
        ]
    s = _E17.get("sssp")
    if s:
        lines += [
            "",
            f"min-plus SSSP (n={s['n']}, {s['reachable']} reachable):",
            f"  sparse value backend (fused mxm-accumulate rounds): "
            f"{s['sparse_ms']:8.1f} ms",
            f"  dense reference relaxation:                         "
            f"{s['dense_ms']:8.1f} ms",
            f"  dense/sparse ratio: {s['dense_ms'] / max(s['sparse_ms'], 1e-9):.2f}x",
        ]
    add_report("E17_semiring_dispatch", "\n".join(lines))


defer_report(_report_e17)


def _report_e0():
    """Emit the paper-style comparison table from accumulated results."""
    if not _RESULTS:
        return
    lines = [
        "E0: boolean-specialized vs generic operations",
        f"(scale={BENCH_SCALE}; times are simulated-executor CPU seconds;",
        " ratios are generic/cubool — the paper claims up to 5x time,",
        " up to 4x memory in favour of boolean)",
        "",
        f"{'workload':10s} {'op':5s} {'backend':10s} {'time(ms)':>9s} "
        f"{'storage(KiB)':>13s} {'op peak(KiB)':>13s}",
    ]
    for (workload, op, backend), r in sorted(_RESULTS.items()):
        lines.append(
            f"{workload:10s} {op:5s} {backend:10s} {r['time'] * 1e3:9.1f} "
            f"{r['storage'] / 1024:13.1f} {r['peak'] / 1024:13.1f}"
        )
    lines.append("")
    lines.append(
        f"{'workload':10s} {'op':5s} {'t gen/cubool':>13s} "
        f"{'t gen/best-bool':>16s} {'mem gen64/cubool':>17s}"
    )
    for workload in sorted(_WORKLOADS):
        for op in ("mxm", "add", "kron"):
            try:
                cub = _RESULTS[(workload, op, "cubool")]
                clb = _RESULTS[(workload, op, "clbool")]
                gen = _RESULTS[(workload, op, "generic")]
                gen64 = _RESULTS[(workload, op, "generic64")]
            except KeyError:
                continue
            t_ratio = gen["time"] / max(cub["time"], 1e-9)
            t_best = gen["time"] / max(min(cub["time"], clb["time"]), 1e-9)
            m_ratio = (gen64["storage"] + gen64["peak"]) / max(
                cub["storage"] + cub["peak"], 1
            )
            lines.append(
                f"{workload:10s} {op:5s} {t_ratio:13.2f} {t_best:16.2f} "
                f"{m_ratio:17.2f}"
            )
    add_report("E0_boolean_vs_generic", "\n".join(lines))


defer_report(_report_e0)

"""E8 — storage-format memory trade-offs (the clBool design rationale).

The paper's implementation section justifies clBool's COO choice:
"COO gives better memory footprint for very sparse matrices with a lot
of empty rows", while cuBool's CSR costs ``(m + 1 + nnz)`` indices and
the generic layout adds a values plane.  This benchmark sweeps the
empty-row fraction and the density and reports the exact byte counts of
all four formats, locating the CSR/COO crossover (analytically at
``nnz = m + 1``) and the dense bit-matrix break-even density.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.formats import BitMatrix, BoolCoo, BoolCsr, ValCsr

from .conftest import add_report, defer_report

N = 4096
_ROWS: list[str] = []


def _pattern(nnz: int, empty_row_fraction: float, seed: int = 0):
    """nnz entries confined to the non-empty rows."""
    rng = np.random.default_rng(seed)
    active = max(1, int(N * (1 - empty_row_fraction)))
    rows = rng.integers(0, active, size=nnz)
    cols = rng.integers(0, N, size=nnz)
    return rows, cols


@pytest.mark.parametrize("nnz", [64, 1024, 4096, 65536, 524288])
def test_memory_sweep(benchmark, nnz):
    rows, cols = _pattern(nnz, empty_row_fraction=0.9)

    def build_all():
        return (
            BoolCsr.from_coo(rows, cols, (N, N)),
            BoolCoo.from_coo(rows, cols, (N, N)),
            ValCsr.from_coo(rows, cols, (N, N)),
            BitMatrix.from_coo(rows, cols, (N, N)),
        )

    csr, coo, val, bit = benchmark.pedantic(build_all, rounds=1, iterations=1)
    actual_nnz = csr.nnz
    _ROWS.append(
        f"{actual_nnz:8d} {csr.memory_bytes():12d} {coo.memory_bytes():12d} "
        f"{val.memory_bytes():12d} {bit.memory_bytes():12d}   "
        f"{'COO' if coo.memory_bytes() <= csr.memory_bytes() else 'CSR':>3s}"
    )


def test_crossover_exact(benchmark):
    """The analytic crossover: COO wins iff nnz < m + 1."""

    def check():
        below = _pattern(N, 0.0, seed=1)  # nnz <= N < N + 1 -> COO wins
        above = _pattern(N + 64, 0.0, seed=1)
        coo1 = BoolCoo.from_coo(*below, (N, N))
        csr1 = BoolCsr.from_coo(*below, (N, N))
        r1 = coo1.memory_bytes() <= csr1.memory_bytes()
        coo2 = BoolCoo.from_coo(*above, (N, N))
        csr2 = BoolCsr.from_coo(*above, (N, N))
        # Above the crossover CSR wins — unless duplicate collapse pulled
        # nnz back under m + 1, in which case COO still (correctly) wins.
        if coo2.nnz > N + 1:
            r2 = csr2.memory_bytes() <= coo2.memory_bytes()
        else:
            r2 = coo2.memory_bytes() <= csr2.memory_bytes()
        return r1 and r2

    benchmark.pedantic(check, rounds=1, iterations=1)
    assert check()


def _report():
    if not _ROWS:
        return
    header = (
        f"E8 — format memory (bytes) for {N}x{N} patterns, 90% empty rows\n\n"
        f"{'nnz':>8s} {'BoolCSR':>12s} {'BoolCOO':>12s} {'ValCSR':>12s} "
        f"{'BitMatrix':>12s}   winner(sparse)\n"
    )
    footer = (
        "\nmodel: CSR=(m+1+nnz)*4, COO=2*nnz*4, ValCSR=CSR+nnz*4, "
        "Bit=m*ceil(n/64)*8\n"
        f"CSR/COO crossover at nnz = m+1 = {N + 1} (visible above); the "
        "dense bit matrix wins beyond density 1/16 per the models."
    )
    add_report("E8_format_memory", header + "\n".join(_ROWS) + footer)


defer_report(_report)

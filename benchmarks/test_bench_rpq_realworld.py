"""E4 — Figure 3: RPQ index-creation time over real-world-like RDF graphs.

The paper's second RPQ figure runs the templates over the RDF
collection (Uniprot's taxonomy/proteomes, geospecies, DBpedia's
mappingbased_properties) and observes that (a) evaluation time depends
on graph *structure*, not just size — querying small geospecies can be
slower than the much larger mapping graph; (b) taxonomy is
disproportionately slow for many queries.

We reproduce with structure-matched generators: ``geospecies`` (label
skew + dense tail), ``taxonomy`` (deep sco/type hierarchy), ``eclass``
(mixed), and check the structure-over-size observation.
"""

from __future__ import annotations

import pytest

import repro
from repro.datasets import generate_rpq_queries, graph_stats, rdf_like_graph
from repro.rpq import rpq_index

from .conftest import BENCH_SCALE, add_report, defer_report, timed_runs

GRAPHS = {
    "geospecies~": ("geospecies", 0.25),
    "taxonomy~": ("taxonomy", 0.03),
    "eclass~": ("eclass", 0.3),
}

TEMPLATES = ["Q1", "Q2", "Q4_2", "Q5", "Q9_2", "Q10_2", "Q11_2", "Q15"]

_GRAPH_CACHE: dict[str, object] = {}
_TIMES: dict[tuple[str, str], float] = {}
_SIZES: dict[str, int] = {}


def _graph(name):
    if name not in _GRAPH_CACHE:
        preset, scale = GRAPHS[name]
        _GRAPH_CACHE[name] = rdf_like_graph(
            preset, scale=scale * BENCH_SCALE, seed=23
        )
        _SIZES[name] = _GRAPH_CACHE[name].n
    return _GRAPH_CACHE[name]


@pytest.mark.parametrize("graph_name", sorted(GRAPHS))
@pytest.mark.parametrize("template", TEMPLATES)
def test_index_creation(benchmark, graph_name, template):
    graph = _graph(graph_name)
    # Paper scheme: most-frequent labels instantiate the template.
    (name, regex), = generate_rpq_queries(
        graph, templates=[template], per_template=1, seed=3
    )
    ctx = repro.Context(backend="cubool")

    def build():
        rpq_index(graph, regex, ctx).free()

    mean, _ = timed_runs(build, runs=3)
    _TIMES[(template, graph_name)] = mean
    benchmark.pedantic(build, rounds=1, iterations=1)
    ctx.finalize()


def _report():
    if not _TIMES:
        return
    graphs = sorted(GRAPHS)
    lines = [
        "Figure 3 analogue — RPQ index creation on real-world-like RDFs",
        "(seconds, mean of 3; graph sizes shown in header)",
        "",
        f"{'query':8s} "
        + " ".join(f"{g}(n={_SIZES.get(g, 0)})".rjust(22) for g in graphs),
    ]
    for template in TEMPLATES:
        row = [f"{template:8s}"]
        for g in graphs:
            t = _TIMES.get((template, g))
            row.append(f"{t:22.4f}" if t is not None else f"{'---':>22s}")
        lines.append(" ".join(row))
    # Structure-over-size observation.
    geo = [v for (q, g), v in _TIMES.items() if g == "geospecies~"]
    tax = [v for (q, g), v in _TIMES.items() if g == "taxonomy~"]
    if geo and tax and _SIZES.get("geospecies~", 0) < _SIZES.get("taxonomy~", 1):
        slower_somewhere = any(
            _TIMES.get((q, "geospecies~"), 0) > _TIMES.get((q, "taxonomy~"), float("inf"))
            for q in TEMPLATES
        )
        lines.append("")
        lines.append(
            "shape check: smaller geospecies~ slower than larger graph on "
            f"some query (paper's structure-over-size point): {slower_somewhere}"
        )
    add_report("E4_rpq_realworld", "\n".join(lines))


defer_report(_report)

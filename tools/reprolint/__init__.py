"""Standalone launcher for reprolint (``python -m tools.reprolint``).

The implementation lives in :mod:`repro.analysis` so the library can
lint itself (``python -m repro lint``) and tests can import the rules;
this package exists so the gate also runs in checkouts where ``repro``
is not installed — it prepends ``src/`` to ``sys.path`` before
delegating.
"""

from __future__ import annotations

import sys
from pathlib import Path


def _ensure_repro_on_path() -> None:
    try:
        import repro.analysis  # noqa: F401
        return
    except ImportError:
        pass
    src = Path(__file__).resolve().parents[2] / "src"
    if src.is_dir():
        sys.path.insert(0, str(src))


def main(argv: list[str] | None = None) -> int:
    _ensure_repro_on_path()
    from repro.analysis.cli import main as cli_main

    return cli_main(argv)

#!/usr/bin/env python
"""Custom semirings: min-plus shortest paths over a labeled graph.

The paper's conclusion lists custom semirings (explicitly Min-Plus) as
future work; this example runs the library's tropical-semiring closure
on a weighted transport network and cross-checks one route against a
hand computation.

Run:  python examples/shortest_paths.py
"""

import numpy as np

from repro.algorithms import (
    all_pairs_shortest_paths,
    single_source_shortest_paths,
    weight_matrix,
)
from repro.graph import LabeledGraph


def main() -> None:
    # A small transport network: road edges cost 2, rail 1.5, ferry 5.
    cities = ["aalborg", "berlin", "cologne", "dresden", "essen", "frankfurt"]
    triples = [
        (0, "ferry", 1),
        (1, "rail", 2),
        (1, "road", 3),
        (2, "road", 4),
        (3, "rail", 5),
        (4, "rail", 5),
        (2, "rail", 5),
        (5, "road", 1),
    ]
    graph = LabeledGraph.from_triples(triples, n=len(cities))
    weights = weight_matrix(graph, {"road": 2.0, "rail": 1.5, "ferry": 5.0})

    dist = all_pairs_shortest_paths(weights)
    print("all-pairs distances (inf = unreachable):")
    header = "          " + " ".join(f"{c[:7]:>8s}" for c in cities)
    print(header)
    for i, city in enumerate(cities):
        row = " ".join(
            f"{dist[i, j]:8.1f}" if np.isfinite(dist[i, j]) else f"{'inf':>8s}"
            for j in range(len(cities))
        )
        print(f"{city[:9]:9s} {row}")

    # aalborg -> frankfurt: ferry(5) + rail(1.5) + rail(1.5) = 8.0
    assert dist[0, 5] == 8.0, dist[0, 5]
    print("\naalborg -> frankfurt best cost:", dist[0, 5], "(ferry + rail + rail)")

    source = single_source_shortest_paths(weights, 0)
    assert np.allclose(source, dist[0], equal_nan=True)
    print("single-source sweep matches the APSP row: True")


if __name__ == "__main__":
    main()

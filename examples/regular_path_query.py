#!/usr/bin/env python
"""Regular path querying over a LUBM-like graph (the paper's Fig. 2 workload).

Builds a scaled LUBM-style university graph, instantiates the Table II
query templates with the graph's most frequent relations, evaluates each
with the Kronecker-product index, and extracts example paths.

Run:  python examples/regular_path_query.py [scale]
"""

import sys
import time

import repro
from repro.datasets import generate_rpq_queries, graph_stats, lubm_like_graph
from repro.rpq import extract_paths, rpq_index


def main(scale: float = 0.25) -> None:
    graph = lubm_like_graph("LUBM1k", scale=scale, seed=42)
    print("graph:", graph_stats(graph))
    print("top relations:", graph.most_frequent_labels(5))

    ctx = repro.Context(backend="cubool")
    queries = generate_rpq_queries(
        graph,
        templates=["Q1", "Q2", "Q5", "Q9_2", "Q11_3"],
        per_template=1,
        seed=7,
    )

    for name, regex in queries:
        t0 = time.perf_counter()
        index = rpq_index(graph, regex, ctx)
        elapsed = time.perf_counter() - t0
        pairs = index.pairs()
        print(
            f"{name:6s} {regex:45s} index={elapsed * 1e3:7.1f} ms "
            f"states={index.k:2d} pairs={len(pairs)}"
        )
        # Show one concrete matching path for the first answered pair.
        for (u, v) in sorted(pairs)[:1]:
            paths = extract_paths(index, u, v, max_paths=1, max_length=10)
            if paths:
                p = paths[0]
                hops = " -> ".join(
                    f"{a}({lab})" for a, lab in zip(p.vertices, p.labels)
                )
                print(f"        path {u} → {v}: {hops} -> {p.vertices[-1]}")
        index.free()

    ctx.finalize()


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.25)

#!/usr/bin/env python
"""Triangle counting: where the *generic* semiring is genuinely needed.

Boolean products answer "is there a wedge?", not "how many wedges?" —
so triangle counting routes through the value-carrying baseline backend,
illustrating both sides of the boolean-vs-generic trade-off the paper
measures.  Counts triangles across graph families and cross-checks a
small case against a brute-force count.

Run:  python examples/triangle_counting.py
"""

import itertools
import time

import numpy as np

import repro
from repro.algorithms import triangle_count
from repro.datasets import grid_graph, power_law_graph, uniform_random_graph


def brute_triangles(dense: np.ndarray) -> int:
    und = dense | dense.T
    np.fill_diagonal(und, False)
    n = len(und)
    count = 0
    for i, j, k in itertools.combinations(range(n), 3):
        if und[i, j] and und[j, k] and und[i, k]:
            count += 1
    return count


def main() -> None:
    ctx = repro.Context(backend="cubool")

    # Cross-check on a small random graph.
    rng = np.random.default_rng(0)
    small = rng.random((25, 25)) < 0.2
    np.fill_diagonal(small, False)
    m = ctx.matrix_from_dense(small)
    got = triangle_count(m)
    ref = brute_triangles(small.copy())
    print(f"small graph: triangle_count={got}, brute force={ref}, match={got == ref}")

    # Families with different triangle behaviour.
    cases = [
        ("uniform n=400 m=3200", uniform_random_graph(400, 3200, seed=1)),
        ("power-law n=400 m=3200", power_law_graph(400, 3200, seed=1)),
        ("grid 20x20", grid_graph(20)),
    ]
    for name, graph in cases:
        a = graph.adjacency_union(ctx)
        t0 = time.perf_counter()
        count = triangle_count(a)
        elapsed = time.perf_counter() - t0
        print(f"{name:26s} triangles={count:6d}  ({elapsed * 1e3:.1f} ms)")
        a.free()

    # Grids are triangle-free; power-law graphs clump.
    ctx.finalize()


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Context-free path querying: Tns vs Mtx on an RDF-like graph (Table IV).

Runs the same-generation queries G1/G2 with both engines on a scaled
``go``-like RDF graph, compares index-creation time and answers, and
extracts all-paths witnesses from the tensor index — the capability the
matrix algorithm does not provide.

Run:  python examples/context_free_path_query.py [scale]
"""

import sys

import repro
from repro.cfpq import extract_paths, matrix_cfpq, tensor_cfpq
from repro.datasets import graph_stats, rdf_like_graph
from repro.datasets.queries_cfpq import query_g1, query_g2


def main(scale: float = 0.2) -> None:
    graph = rdf_like_graph("go", scale=scale, seed=3).with_inverses(
        labels=["subClassOf", "type"]
    )
    print("graph:", graph_stats(graph, labels_of_interest=["subClassOf", "type"]))

    ctx = repro.Context(backend="cubool")

    for grammar, name in [(query_g1(), "G1"), (query_g2(), "G2")]:
        tns = tensor_cfpq(graph, grammar, ctx)
        mtx = matrix_cfpq(graph, grammar, ctx)
        match = "==" if tns.pairs() == mtx.pairs() else "!!MISMATCH!!"
        print(
            f"{name}: Tns {tns.stats['time_s'] * 1e3:8.1f} ms "
            f"(rsm states={tns.stats['rsm_states']}) | "
            f"Mtx {mtx.stats['time_s'] * 1e3:8.1f} ms "
            f"(wCNF rules={mtx.stats['wcnf_rules']} vs "
            f"{mtx.stats['original_rules']} original) | "
            f"pairs={len(tns.pairs())} {match}"
        )

        # All-paths extraction from the tensor index (Mtx cannot do this).
        for (u, v) in sorted(tns.pairs())[:2]:
            paths = extract_paths(tns, u, v, max_paths=3, max_length=12)
            rendered = ["·".join(p.labels) for p in paths]
            print(f"   witnesses for ({u}, {v}): {rendered}")
        tns.free()
        mtx.free()

    ctx.finalize()


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.2)

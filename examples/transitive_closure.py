#!/usr/bin/env python
"""Transitive closure and incremental maintenance — the CFPQ bottleneck.

The paper singles out incremental transitive closure as the obstacle to
subcubic CFPQ.  This example builds a memory-alias graph, closes its
``a``-edge relation, then streams in edge batches and compares
incremental maintenance against full recomputation.

Run:  python examples/transitive_closure.py
"""

import time

import numpy as np

import repro
from repro.algorithms import incremental_transitive_closure, transitive_closure
from repro.datasets import graph_stats, memory_alias_graph


def main() -> None:
    ctx = repro.Context(backend="cubool")

    graph = memory_alias_graph("fs", scale=0.01, seed=5)
    print("graph:", graph_stats(graph, labels_of_interest=["a", "d"]))

    pairs = np.asarray(graph.edges["a"], dtype=np.int64)
    split = len(pairs) * 3 // 4
    base_edges, delta_edges = pairs[:split], pairs[split:]

    base = ctx.matrix_from_lists((graph.n, graph.n), base_edges[:, 0], base_edges[:, 1])
    t0 = time.perf_counter()
    closure = transitive_closure(base)
    t_base = time.perf_counter() - t0
    print(f"base closure: nnz={closure.nnz} in {t_base * 1e3:.1f} ms")

    # Stream the remaining edges in 4 batches, maintained incrementally.
    batches = np.array_split(delta_edges, 4)
    t0 = time.perf_counter()
    current = closure
    for i, batch in enumerate(batches):
        if len(batch) == 0:
            continue
        delta = ctx.matrix_from_lists((graph.n, graph.n), batch[:, 0], batch[:, 1])
        updated = incremental_transitive_closure(current, delta)
        current.free()
        current = updated
        print(f"  batch {i}: +{len(batch)} edges -> closure nnz={current.nnz}")
    t_inc = time.perf_counter() - t0

    # Full recomputation for comparison (and correctness check).
    full_input = ctx.matrix_from_lists((graph.n, graph.n), pairs[:, 0], pairs[:, 1])
    t0 = time.perf_counter()
    full = transitive_closure(full_input)
    t_full = time.perf_counter() - t0

    assert full.equals(current), "incremental result must equal recomputation"
    print(
        f"incremental total {t_inc * 1e3:.1f} ms vs full recompute "
        f"{t_full * 1e3:.1f} ms (equal results: True)"
    )

    ctx.finalize()


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Multi-device execution: row-partitioned boolean SpGEMM.

The paper's future-work section names multi-GPU programming as a
direction; this example distributes a matrix over a pool of simulated
devices in nnz-balanced row blocks, squares it against a replicated
right operand, and reports the per-device nnz balance and memory —
including the replication overhead that 1-D SpGEMM layouts pay.

Run:  python examples/multi_device.py
"""

import time

import numpy as np

from repro.datasets import power_law_graph
from repro.distributed import DevicePool


def main() -> None:
    graph = power_law_graph(1200, 20000, seed=21)
    pairs = np.asarray(graph.edges["a"], dtype=np.int64)
    rows, cols = pairs[:, 0], pairs[:, 1]
    shape = (graph.n, graph.n)

    # Single-device reference answer and time.
    ref_pool = DevicePool(n_devices=1, backend="cubool")
    t0 = time.perf_counter()
    d_ref = ref_pool.distribute(rows, cols, shape)
    c_ref = d_ref.mxm_replicated(rows, cols, shape)
    t_single = time.perf_counter() - t0
    ref_pattern = set(zip(*[x.tolist() for x in c_ref.gather()]))

    print(f"workload: M·M, n={graph.n}, unique nnz={d_ref.nnz}, output nnz={c_ref.nnz}\n")
    print(
        f"{'devices':>8s} {'time (ms)':>10s} {'input nnz / device':>34s} "
        f"{'output nnz / device':>34s} {'live KiB/dev':>13s}"
    )
    for k in (1, 2, 4, 8):
        pool = DevicePool(n_devices=k, backend="cubool")
        da = pool.distribute(rows, cols, shape)
        in_balance = da.block_nnz()
        t0 = time.perf_counter()
        dc = da.mxm_replicated(rows, cols, shape)
        elapsed = time.perf_counter() - t0
        # Verify against the single-device result.
        pattern = set(zip(*[x.tolist() for x in dc.gather()]))
        assert pattern == ref_pattern, "distributed result must match"
        live = max(e["live_bytes"] for e in pool.memory_report().values())
        print(
            f"{k:8d} {elapsed * 1e3:10.1f} {str(in_balance):>34s} "
            f"{str(dc.block_nnz()):>34s} {live / 1024:13.1f}"
        )
        dc.free()
        da.free()

    print(
        "\nnote: on the single-core simulated executor the devices run "
        "sequentially, so wall time does not drop with the pool size — "
        "the per-device nnz balance and the B-replication memory cost "
        "are the modeled quantities."
    )


if __name__ == "__main__":
    main()

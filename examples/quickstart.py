#!/usr/bin/env python
"""Quickstart: the sparse boolean Matrix API in five minutes.

Creates matrices on the cuBool-port backend, runs the full SPbLA
operation set (multiply, multiply-add, element-wise add, Kronecker,
transpose, sub-matrix, reduce), and shows the device-memory accounting
that powers the paper's memory benchmarks.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro


def main() -> None:
    # A context owns a backend and a simulated device (the C API's
    # cuBool_Initialize).  Backends: cubool / clbool / cpu / generic.
    with repro.Context(backend="cubool") as ctx:
        # -- create -----------------------------------------------------
        # 6x6 directed cycle plus a few chords.
        n = 6
        rows = [0, 1, 2, 3, 4, 5, 0, 2]
        cols = [1, 2, 3, 4, 5, 0, 3, 5]
        a = ctx.matrix_from_lists((n, n), rows, cols)
        print(f"A: {a.nrows}x{a.ncols}, nnz={a.nnz}, density={a.density:.3f}")
        print(f"A storage (CSR, no values): {a.memory_bytes()} bytes")

        # -- multiply -----------------------------------------------------
        paths2 = a @ a  # vertices reachable in exactly two steps
        print(f"A·A nnz={paths2.nnz}: {list(paths2)[:6]} ...")

        # -- multiply-add (C += A x B, the CFPQ workhorse) ----------------
        reach2 = a.mxm(a, accumulate=a)  # one or two steps
        print(f"A ∨ A·A nnz={reach2.nnz}")

        # -- element-wise add ---------------------------------------------
        eye = ctx.identity(n)
        reflexive = a | eye
        print(f"A ∨ I nnz={reflexive.nnz}")

        # -- Kronecker product -------------------------------------------
        tile = ctx.matrix_from_lists((2, 2), [0, 1], [1, 0])
        big = tile.kron(a)
        print(f"tile ⊗ A: {big.nrows}x{big.ncols}, nnz={big.nnz}")

        # -- transpose, sub-matrix, reduce --------------------------------
        at = a.T
        print(f"Aᵀ[1,0]={at.get(1, 0)} (A[0,1]={a.get(0, 1)})")
        block = a[0:3, 0:6]
        print(f"A[0:3, :] nnz={block.nnz}")
        nonempty = a.reduce_to_vector()
        print(f"rows with any entry: {nonempty.to_list()}")

        # -- transitive closure (the library's flagship composite) --------
        from repro.algorithms import transitive_closure

        closure = transitive_closure(a)
        print(f"closure nnz={closure.nnz} (cycle ⇒ complete: {closure.nnz == n * n})")

        # -- device memory accounting -------------------------------------
        stats = ctx.device.arena.stats()
        print(
            f"device memory: live={stats.live_bytes}B "
            f"peak={stats.peak_bytes}B allocs={stats.alloc_count}"
        )

    # Context exit freed everything.
    print("finalized; all device buffers released")


if __name__ == "__main__":
    main()

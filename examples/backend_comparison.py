#!/usr/bin/env python
"""Boolean vs. generic backends: the paper's headline claim, live.

Squares the same matrix on every backend and reports wall time and
device-memory peaks — the miniature version of benchmark E0.  Expected
shape: cubool/clbool beat the generic value-carrying baseline on both
axes, with the generic float64 variant worst on memory.

Run:  python examples/backend_comparison.py
"""

import time

import numpy as np

import repro
from repro.datasets import power_law_graph


def main() -> None:
    graph = power_law_graph(1500, 24000, seed=11)
    pairs = np.concatenate(
        [np.asarray(p, dtype=np.int64) for p in graph.edges.values()]
    )

    print(f"workload: M·M on {graph.n} vertices, {len(pairs)} edges\n")
    print(f"{'backend':10s} {'time (ms)':>10s} {'storage (KiB)':>14s} {'op peak (KiB)':>14s}")

    for backend in ("cubool", "clbool", "generic", "generic64"):
        ctx = repro.Context(backend=backend)
        m = ctx.matrix_from_lists((graph.n, graph.n), pairs[:, 0], pairs[:, 1])
        storage = m.memory_bytes()
        live = ctx.device.arena.live_bytes
        ctx.device.arena.reset_peak()

        t0 = time.perf_counter()
        out = m.mxm(m)
        elapsed = time.perf_counter() - t0

        peak = ctx.device.arena.peak_bytes - live
        print(
            f"{backend:10s} {elapsed * 1e3:10.1f} {storage / 1024:14.1f} "
            f"{peak / 1024:14.1f}"
        )
        ctx.finalize()


if __name__ == "__main__":
    main()
